// The steady-state fast path's load-bearing property: batched slice
// execution (pim::Cluster::compute_batch + sys::Processor::run_tasks_batched),
// the per-processor decision memo and processor reuse (Processor::reset +
// the runner/fleet pools) all produce output byte-identical to the scalar,
// unmemoized, freshly-constructed path — across architectures, override
// placements, zero-task slices and thread counts.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "energy/power_spec.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "hhpim/scheduler.hpp"
#include "nn/zoo.hpp"
#include "pim/cluster.hpp"
#include "placement/lut_cache.hpp"
#include "workload/scenario.hpp"

namespace hhpim {
namespace {

using sys::ArchConfig;
using sys::Processor;
using sys::RunStats;
using sys::SliceStats;
using sys::SystemConfig;

SystemConfig small_config(ArchConfig arch, bool batched, bool memo) {
  SystemConfig c;
  c.arch = arch;
  c.lut_t_entries = 16;
  c.lut_k_blocks = 16;
  c.batched_execution = batched;
  c.memoize_decisions = memo;
  return c;
}

std::vector<int> mixed_loads() {
  // Exercises n = 0, 1, 2 (scalar inside the batched path), the batched
  // tail (>= 3), and the peak load.
  return {10, 4, 0, 1, 7, 2, 10, 0, 3, 5, 8};
}

/// Strict equality — times are integer ps, energies compared bit-for-bit
/// via their double pj value, as the JSON writers would render them.
void expect_identical(const RunStats& a, const RunStats& b) {
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t i = 0; i < a.slices.size(); ++i) {
    const SliceStats& x = a.slices[i];
    const SliceStats& y = b.slices[i];
    EXPECT_EQ(x.slice, y.slice) << "slice " << i;
    EXPECT_EQ(x.tasks_executed, y.tasks_executed) << "slice " << i;
    EXPECT_EQ(x.alloc, y.alloc) << "slice " << i;
    EXPECT_EQ(x.movement_time.as_ps(), y.movement_time.as_ps()) << "slice " << i;
    EXPECT_EQ(x.busy_time.as_ps(), y.busy_time.as_ps()) << "slice " << i;
    EXPECT_EQ(x.energy.as_pj(), y.energy.as_pj()) << "slice " << i;
    EXPECT_EQ(x.deadline_violated, y.deadline_violated) << "slice " << i;
  }
  EXPECT_EQ(a.total_energy.as_pj(), b.total_energy.as_pj());
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.deadline_violations, b.deadline_violations);
  EXPECT_EQ(a.total_time.as_ps(), b.total_time.as_ps());
}

RunStats run_arch(ArchConfig arch, bool batched, bool memo,
                  const std::vector<int>& loads) {
  Processor proc{small_config(arch, batched, memo), nn::zoo::efficientnet_b0()};
  return proc.run_scenario(loads);
}

TEST(BatchedExecution, MatchesScalarAcrossArchitectures) {
  for (const ArchConfig& arch : ArchConfig::paper_table1()) {
    SCOPED_TRACE(arch.name);
    const RunStats scalar = run_arch(arch, false, false, mixed_loads());
    const RunStats batched = run_arch(arch, true, false, mixed_loads());
    expect_identical(scalar, batched);
  }
}

TEST(BatchedExecution, DecisionMemoMatchesUnmemoized) {
  for (const ArchConfig& arch : {ArchConfig::hhpim(), ArchConfig::baseline()}) {
    SCOPED_TRACE(arch.name);
    const RunStats plain = run_arch(arch, false, false, mixed_loads());
    const RunStats memoized = run_arch(arch, false, true, mixed_loads());
    expect_identical(plain, memoized);
  }
}

TEST(BatchedExecution, FullFastPathMatchesScalar) {
  const RunStats scalar = run_arch(ArchConfig::hhpim(), false, false, mixed_loads());
  const RunStats fast = run_arch(ArchConfig::hhpim(), true, true, mixed_loads());
  expect_identical(scalar, fast);
}

TEST(BatchedExecution, MatchesScalarUnderPlacementOverride) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  const std::vector<int> loads = mixed_loads();
  RunStats results[2];
  for (int batched = 0; batched < 2; ++batched) {
    Processor proc{small_config(ArchConfig::hhpim(), batched != 0, false), model};
    // Pin the low-power MRAM split (two active spaces, both MRAM — the
    // fleet's adaptation placement), run, then release the override
    // mid-scenario.
    RunStats run;
    const placement::Allocation low_power =
        sys::balanced_mram_split(proc.cost_model(), proc.total_weights());
    proc.set_placement_override(low_power);
    int buffered = 0;
    for (std::size_t k = 0; k <= loads.size(); ++k) {
      if (k == loads.size() / 2) proc.set_placement_override(std::nullopt);
      const int arriving = k < loads.size() ? loads[k] : 0;
      SliceStats s = proc.run_slice(buffered);
      run.tasks += static_cast<std::uint64_t>(s.tasks_executed);
      run.deadline_violations += s.deadline_violated ? 1 : 0;
      run.slices.push_back(std::move(s));
      buffered = arriving;
    }
    run.total_energy = proc.ledger().total();
    results[batched] = std::move(run);
  }
  expect_identical(results[0], results[1]);
}

TEST(BatchedExecution, ZeroAndTinyTaskSlices) {
  // All-zero and sub-batch-threshold loads never enter the replay kernel;
  // the two paths must still agree exactly (and trivially do — pin it).
  const std::vector<int> loads = {0, 0, 1, 0, 2, 0};
  for (const ArchConfig& arch : {ArchConfig::hhpim(), ArchConfig::hybrid()}) {
    SCOPED_TRACE(arch.name);
    expect_identical(run_arch(arch, false, false, loads),
                     run_arch(arch, true, true, loads));
  }
}

TEST(ClusterComputeBatch, MatchesBarrierSynchronizedScalarLoop) {
  using energy::MemoryKind;
  for (const MemoryKind mem : {MemoryKind::kMram, MemoryKind::kSram}) {
    SCOPED_TRACE(mem == MemoryKind::kMram ? "mram" : "sram");
    const energy::PowerSpec spec = energy::PowerSpec::paper_45nm();
    pim::ClusterConfig cc;
    cc.module_count = 4;
    energy::EnergyLedger scalar_ledger, batched_ledger;
    pim::Cluster scalar_cluster{cc, spec, &scalar_ledger};
    pim::Cluster batched_cluster{cc, spec, &batched_ledger};
    // Odd MAC count: modules get unequal shares, so the batch must
    // reproduce per-module gaps exactly.
    const std::uint64_t macs = 4 * 1000 + 3;
    constexpr int kTasks = 9;

    Time scalar_end = Time::ps(100);
    for (int k = 0; k < kTasks; ++k) {
      scalar_end = scalar_cluster.compute(scalar_end, mem, macs);
    }
    const Time batched_end =
        batched_cluster.compute_batch(Time::ps(100), mem, macs, kTasks);

    EXPECT_EQ(scalar_end.as_ps(), batched_end.as_ps());
    scalar_cluster.settle(scalar_end);
    batched_cluster.settle(batched_end);
    EXPECT_EQ(scalar_ledger.total().as_pj(), batched_ledger.total().as_pj());
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(scalar_cluster.module(i).busy_until().as_ps(),
                batched_cluster.module(i).busy_until().as_ps());
      EXPECT_EQ(scalar_cluster.module(i).total_macs(),
                batched_cluster.module(i).total_macs());
    }
  }
}

TEST(ProcessorReset, ResetEqualsFreshConstruction) {
  const nn::Model model = nn::zoo::efficientnet_b0();
  placement::LutCache cache;
  SystemConfig config = small_config(ArchConfig::hhpim(), true, true);
  config.lut_cache = &cache;

  Processor reused{config, model};
  (void)reused.run_scenario({3, 9, 0, 5});  // arbitrary first life
  reused.set_placement_override(
      sys::balanced_mram_split(reused.cost_model(), reused.total_weights()));
  (void)reused.run_slice(2);  // leave override + partial state behind
  reused.reset();

  Processor fresh{config, model};
  expect_identical(fresh.run_scenario(mixed_loads()),
                   reused.run_scenario(mixed_loads()));
  EXPECT_FALSE(reused.placement_override_active());
}

TEST(ProcessorReset, RepeatedResetRunsAreStable) {
  const nn::Model model = nn::zoo::mobilenet_v2();
  SystemConfig config = small_config(ArchConfig::hhpim(), true, true);
  Processor proc{config, model};
  const RunStats first = proc.run_scenario({5, 2, 8});
  for (int i = 0; i < 3; ++i) {
    proc.reset();
    expect_identical(first, proc.run_scenario({5, 2, 8}));
  }
}

TEST(RunnerGrid, ByteIdenticalScalarVsBatchedAtAnyThreadCount) {
  exp::ExperimentSpec spec;
  spec.name = "batched-grid";
  spec.archs = {ArchConfig::hhpim(), ArchConfig::hetero()};
  spec.models = {nn::zoo::efficientnet_b0(), nn::zoo::resnet18()};
  workload::ScenarioConfig wc;
  wc.slices = 5;
  spec.scenarios = {exp::ScenarioSpec::of(workload::Scenario::kPulsing, wc),
                    exp::ScenarioSpec::of(workload::Scenario::kRandom, wc)};
  SystemConfig scalar_cfg;
  scalar_cfg.lut_t_entries = 16;
  scalar_cfg.lut_k_blocks = 16;
  scalar_cfg.batched_execution = false;
  scalar_cfg.memoize_decisions = false;
  SystemConfig fast_cfg = scalar_cfg;
  fast_cfg.batched_execution = true;
  fast_cfg.memoize_decisions = true;

  exp::ExperimentSpec scalar_spec = spec;
  scalar_spec.variants.push_back({"", scalar_cfg});
  exp::ExperimentSpec fast_spec = spec;
  fast_spec.variants.push_back({"", fast_cfg});

  placement::LutCache c1, c2, c3;
  exp::RunnerOptions scalar_opts;  // reuse off: the fully scalar reference
  scalar_opts.threads = 1;
  scalar_opts.lut_cache = &c1;
  scalar_opts.reuse_processors = false;
  exp::RunnerOptions fast_t1;
  fast_t1.threads = 1;
  fast_t1.lut_cache = &c2;
  exp::RunnerOptions fast_t8;
  fast_t8.threads = 8;
  fast_t8.lut_cache = &c3;

  const exp::ResultSet scalar = exp::Runner{scalar_opts}.run(scalar_spec);
  const exp::ResultSet fast1 = exp::Runner{fast_t1}.run(fast_spec);
  const exp::ResultSet fast8 = exp::Runner{fast_t8}.run(fast_spec);

  // The variant label is the only allowed difference — none exists here.
  EXPECT_EQ(scalar.to_json(), fast1.to_json());
  EXPECT_EQ(scalar.to_csv(), fast1.to_csv());
  EXPECT_EQ(fast1.to_json(), fast8.to_json());
  EXPECT_EQ(fast1.to_csv(), fast8.to_csv());
  EXPECT_FALSE(scalar.to_json().empty());
}

TEST(FleetFastPath, ByteIdenticalScalarVsBatchedAndAcrossThreads) {
  fleet::FleetSpec spec;
  spec.name = "batched-fleet";
  spec.devices = 24;
  spec.slices = 6;
  spec.models = {nn::zoo::efficientnet_b0()};
  spec.config.lut_t_entries = 16;
  spec.config.lut_k_blocks = 16;

  fleet::FleetSpec scalar_spec = spec;
  scalar_spec.config.batched_execution = false;
  scalar_spec.config.memoize_decisions = false;

  placement::LutCache c_scalar, c1, c8;
  fleet::FleetOptions scalar_opts;  // scalar, unmemoized, no reuse
  scalar_opts.threads = 1;
  scalar_opts.shard_size = 4;
  scalar_opts.lut_cache = &c_scalar;
  scalar_opts.reuse_processors = false;
  fleet::FleetOptions fast1{.threads = 1, .shard_size = 4, .lut_cache = &c1};
  fleet::FleetOptions fast8{.threads = 8, .shard_size = 4, .lut_cache = &c8};

  const fleet::FleetResult scalar = fleet::FleetSimulator{scalar_opts}.run(scalar_spec);
  const fleet::FleetResult r1 = fleet::FleetSimulator{fast1}.run(spec);
  const fleet::FleetResult r8 = fleet::FleetSimulator{fast8}.run(spec);

  EXPECT_EQ(scalar.to_jsonl(), r1.to_jsonl());
  EXPECT_EQ(scalar.summary_to_json(), r1.summary_to_json());
  EXPECT_EQ(r1.to_jsonl(), r8.to_jsonl());
  EXPECT_EQ(r1.summary_to_json(), r8.summary_to_json());
  EXPECT_NE(r1.to_jsonl(), "");
}

}  // namespace
}  // namespace hhpim
