#include "nn/model.hpp"

#include <gtest/gtest.h>

#include "nn/layer.hpp"
#include "nn/quantize.hpp"
#include "nn/zoo.hpp"

namespace hhpim::nn {
namespace {

TEST(Layer, ConvParamsAndMacs) {
  Layer l;
  l.name = "c";
  l.kind = LayerKind::kConv2d;
  l.in = {16, 32, 32};
  l.out = {32, 32, 32};
  l.kernel = 3;
  l.stride = 1;
  EXPECT_NO_THROW(l.validate());
  EXPECT_EQ(l.params(), 3u * 3 * 16 * 32);            // 4608
  EXPECT_EQ(l.macs(), 4608u * 32 * 32);
}

TEST(Layer, GroupedConv) {
  Layer l;
  l.kind = LayerKind::kConv2d;
  l.in = {16, 8, 8};
  l.out = {32, 8, 8};
  l.kernel = 1;
  l.groups = 4;
  EXPECT_EQ(l.params(), 1u * 1 * 4 * 32);
}

TEST(Layer, DepthwiseConv) {
  Layer l;
  l.name = "dw";
  l.kind = LayerKind::kDwConv2d;
  l.in = {24, 16, 16};
  l.out = {24, 8, 8};
  l.kernel = 3;
  l.stride = 2;
  l.groups = 24;
  EXPECT_NO_THROW(l.validate());
  EXPECT_EQ(l.params(), 9u * 24);
  EXPECT_EQ(l.macs(), 9u * 24 * 8 * 8);
}

TEST(Layer, LinearAndWeightless) {
  Layer fc;
  fc.kind = LayerKind::kLinear;
  fc.in = {128, 1, 1};
  fc.out = {10, 1, 1};
  EXPECT_EQ(fc.params(), 1280u);
  EXPECT_EQ(fc.macs(), 1280u);

  Layer pool;
  pool.kind = LayerKind::kPool;
  pool.in = {8, 4, 4};
  pool.out = {8, 1, 1};
  pool.stride = 4;
  EXPECT_EQ(pool.params(), 0u);
  EXPECT_EQ(pool.macs(), 0u);
}

TEST(Layer, ValidationCatchesBadShapes) {
  Layer l;
  l.name = "bad";
  l.kind = LayerKind::kConv2d;
  l.in = {16, 32, 32};
  l.out = {32, 13, 32};  // wrong spatial dims for stride 1
  l.kernel = 3;
  EXPECT_THROW(l.validate(), std::invalid_argument);

  Layer dw;
  dw.name = "dw";
  dw.kind = LayerKind::kDwConv2d;
  dw.in = {16, 8, 8};
  dw.out = {32, 8, 8};  // depthwise must preserve channels
  EXPECT_THROW(dw.validate(), std::invalid_argument);
}

TEST(Model, BuilderTracksShapes) {
  Model m{"tiny", 0.8};
  m.input({3, 32, 32});
  m.conv("c1", 8, 3, 2);
  EXPECT_EQ(m.current_shape(), (TensorShape{8, 16, 16}));
  m.dwconv("dw", 3, 2);
  EXPECT_EQ(m.current_shape(), (TensorShape{8, 8, 8}));
  m.pool("gap", 8);
  m.linear("fc", 10);
  EXPECT_EQ(m.current_shape(), (TensorShape{10, 1, 1}));
  EXPECT_GT(m.structural_params(), 0u);
  EXPECT_GT(m.structural_macs(), m.structural_params());
}

TEST(Model, CalibrationHitsTargetsExactly) {
  Model m{"tiny", 0.8};
  m.input({3, 32, 32});
  m.conv("c1", 32, 3, 1);
  m.conv("c2", 32, 3, 1);
  m.linear("fc", 10);
  m.calibrate(5000, 400000);
  EXPECT_EQ(m.effective_params(), 5000u);
  EXPECT_EQ(m.effective_macs(), 400000u);
  EXPECT_GT(m.sparsity(), 0.0);
  EXPECT_LE(m.sparsity(), 1.0);
}

TEST(Model, CalibrationRejectsImpossibleTargets) {
  Model m{"tiny", 0.5};
  m.input({3, 8, 8});
  m.conv("c", 4, 1, 1);  // 12 params
  EXPECT_THROW(m.calibrate(1000, 1000), std::invalid_argument);
}

TEST(Model, PimSplitFollowsRatio) {
  Model m{"tiny", 0.75};
  m.input({3, 16, 16});
  m.conv("c", 16, 3, 1);
  m.calibrate(400, 100000);
  EXPECT_EQ(m.pim_macs(), 75000u);
  EXPECT_EQ(m.core_ops(), 25000u);
  EXPECT_NEAR(m.uses_per_weight(), 75000.0 / 400.0, 0.1);
}

TEST(Zoo, TableIVTotalsExact) {
  const auto models = zoo::paper_models();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0].name(), "EfficientNet-B0");
  EXPECT_EQ(models[0].effective_params(), 95'000u);
  EXPECT_EQ(models[0].effective_macs(), 3'245'000u);
  EXPECT_DOUBLE_EQ(models[0].pim_op_ratio(), 0.85);
  EXPECT_EQ(models[1].name(), "MobileNetV2");
  EXPECT_EQ(models[1].effective_params(), 101'000u);
  EXPECT_EQ(models[1].effective_macs(), 2'528'000u);
  EXPECT_DOUBLE_EQ(models[1].pim_op_ratio(), 0.80);
  EXPECT_EQ(models[2].name(), "ResNet-18");
  EXPECT_EQ(models[2].effective_params(), 256'000u);
  EXPECT_EQ(models[2].effective_macs(), 29'580'000u);
  EXPECT_DOUBLE_EQ(models[2].pim_op_ratio(), 0.75);
}

TEST(Zoo, PruningIsPhysical) {
  // Sparsity must be a real pruning factor in (0, 1]: the structural network
  // is at least as large as the pruned deployment.
  for (const auto& m : zoo::paper_models()) {
    EXPECT_GT(m.sparsity(), 0.0) << m.name();
    EXPECT_LE(m.sparsity(), 1.0) << m.name();
    EXPECT_GE(m.structural_params(), m.effective_params()) << m.name();
    EXPECT_GT(m.layers().size(), 10u) << m.name();
  }
}

TEST(Zoo, UsesPerWeightOrdering) {
  // ResNet-18 reuses each weight far more than the mobile nets (29.58 M MACs
  // over 256 k params): the ordering drives the placement economics.
  const auto models = zoo::paper_models();
  EXPECT_GT(models[2].uses_per_weight(), models[0].uses_per_weight());
  EXPECT_GT(models[0].uses_per_weight(), models[1].uses_per_weight());
}

TEST(Quantize, RoundtripWithinScale) {
  const std::vector<float> values{0.0f, 0.5f, -0.5f, 1.0f, -1.0f, 0.127f};
  const QuantParams qp = QuantParams::choose(values);
  for (const float v : values) {
    const auto q = quantize_one(v, qp);
    EXPECT_NEAR(dequantize_one(q, qp), v, qp.scale * 0.51);
  }
}

TEST(Quantize, Saturates) {
  QuantParams qp;
  qp.scale = 0.01;
  EXPECT_EQ(quantize_one(100.0f, qp), 127);
  EXPECT_EQ(quantize_one(-100.0f, qp), -128);
}

TEST(Quantize, AccumulatorDequantization) {
  QuantParams a{0.5};
  QuantParams b{0.25};
  // (2 * 0.5) * (4 * 0.25) = 1.0; acc = 2 * 4 = 8; 8 * 0.5 * 0.25 = 1.0.
  EXPECT_FLOAT_EQ(dequantize_acc(8, a, b), 1.0f);
}

TEST(Quantize, VectorHelpers) {
  const std::vector<float> vals{0.1f, -0.2f, 0.3f};
  const QuantParams qp = QuantParams::choose(vals);
  const auto q = quantize(vals, qp);
  const auto back = dequantize(q, qp);
  ASSERT_EQ(back.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(back[i], vals[i], qp.scale);
  }
}

}  // namespace
}  // namespace hhpim::nn
