#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hhpim {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng{99};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{5};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng{17};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

class RngRangeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeTest, NoModuloBias) {
  // With rejection sampling, each residue class should be hit approximately
  // uniformly even for awkward bounds.
  const std::uint64_t bound = GetParam();
  Rng rng{bound};
  std::vector<int> counts(bound, 0);
  const int n = 3000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  const double expect = static_cast<double>(n) / static_cast<double>(bound);
  for (const int c : counts) EXPECT_NEAR(c, expect, expect * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngRangeTest, ::testing::Values(2, 3, 5, 7, 11));

}  // namespace
}  // namespace hhpim
