#include "pe/processing_element.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hhpim::pe {
namespace {

using energy::EnergyLedger;
using energy::PowerSpec;

class PeTest : public ::testing::Test {
 protected:
  PowerSpec spec = PowerSpec::paper_45nm();
  EnergyLedger ledger;
};

TEST_F(PeTest, SingleMacFunctionalAndTimed) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  pe.power_on(Time::zero());
  const auto r = pe.mac(Time::zero(), 3, -4, 10);
  EXPECT_EQ(r.accumulator, 10 - 12);
  EXPECT_EQ(r.complete - r.start, Time::ns(5.52));
}

TEST_F(PeTest, DotProduct) {
  ProcessingElement pe{"pe", spec.lp.pe, &ledger};
  pe.power_on(Time::zero());
  const std::vector<std::int8_t> a{1, 2, 3, 4};
  const std::vector<std::int8_t> b{5, 6, 7, 8};
  const auto r = pe.dot(Time::zero(), a, b, 0);
  EXPECT_EQ(r.accumulator, 5 + 12 + 21 + 32);
  EXPECT_EQ(r.complete, Time::ns(4 * 10.68));
  EXPECT_EQ(pe.mac_count(), 4u);
}

TEST_F(PeTest, DotLengthMismatchThrows) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  pe.power_on(Time::zero());
  const std::vector<std::int8_t> a{1, 2};
  const std::vector<std::int8_t> b{1};
  EXPECT_THROW(pe.dot(Time::zero(), a, b), std::invalid_argument);
}

TEST_F(PeTest, ComputeWhileGatedThrows) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  EXPECT_THROW(pe.mac(Time::zero(), 1, 1, 0), std::logic_error);
}

TEST_F(PeTest, BurstsSerialize) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  pe.power_on(Time::zero());
  const auto r1 = pe.burst(Time::zero(), 10);
  const auto r2 = pe.burst(Time::zero(), 5);
  EXPECT_EQ(r2.start, r1.complete);
  EXPECT_EQ(pe.busy_until(), Time::ns(15 * 5.52));
}

TEST_F(PeTest, EnergyMatchesTableV) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  pe.power_on(Time::zero());
  pe.burst(Time::zero(), 1000);
  // 1000 MACs * 0.9 mW * 5.52 ns.
  EXPECT_NEAR(ledger.total(energy::Activity::kCompute).as_pj(), 1000 * 4.968, 0.5);
}

TEST_F(PeTest, ChargeMacsSkipsTimeline) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  const Energy e = pe.charge_macs(7);
  EXPECT_NEAR(e.as_pj(), 7 * 4.968, 0.01);
  EXPECT_EQ(pe.busy_until(), Time::zero());
  EXPECT_EQ(pe.mac_count(), 7u);
}

TEST_F(PeTest, LeakageWindows) {
  ProcessingElement pe{"pe", spec.hp.pe, &ledger};
  pe.power_on(Time::zero());
  pe.power_off(Time::ns(100));
  // 0.48 mW * 100 ns.
  EXPECT_NEAR(ledger.total(energy::Activity::kLeakage).as_pj(), 48.0, 0.01);
}

TEST(Requantize, ShiftAndSaturate) {
  EXPECT_EQ(ProcessingElement::requantize(256, 2), 64);
  EXPECT_EQ(ProcessingElement::requantize(100000, 4), 127);    // saturates high
  EXPECT_EQ(ProcessingElement::requantize(-100000, 4), -128);  // saturates low
  EXPECT_EQ(ProcessingElement::requantize(-64, 1), -32);
  EXPECT_EQ(ProcessingElement::requantize(5, 0), 5);
}

class RequantizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RequantizeSweep, AlwaysWithinInt8) {
  const int shift = GetParam();
  for (std::int32_t acc = -(1 << 20); acc <= (1 << 20); acc += 997) {
    const int v = ProcessingElement::requantize(acc, shift);
    EXPECT_GE(v, -128);
    EXPECT_LE(v, 127);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, RequantizeSweep, ::testing::Values(0, 1, 4, 8, 12));

}  // namespace
}  // namespace hhpim::pe
