#include "placement/cost_model.hpp"

#include <gtest/gtest.h>

namespace hhpim::placement {
namespace {

using energy::ClusterKind;
using energy::MemoryKind;
using energy::PowerSpec;

class CostModelTest : public ::testing::Test {
 protected:
  // Paper configuration: 4 modules per cluster, 64 kB each memory, and a
  // round uses-per-weight of 10 for hand computation.
  CostModel model = CostModel::build(PowerSpec::paper_45nm(),
                                     ClusterShape{4, 64 * 1024, 64 * 1024},
                                     ClusterShape{4, 64 * 1024, 64 * 1024}, 10.0);
};

TEST_F(CostModelTest, SpaceMetadata) {
  EXPECT_EQ(cluster_of(Space::kHpMram), ClusterKind::kHighPerformance);
  EXPECT_EQ(cluster_of(Space::kLpSram), ClusterKind::kLowPower);
  EXPECT_EQ(memory_of(Space::kHpSram), MemoryKind::kSram);
  EXPECT_EQ(memory_of(Space::kLpMram), MemoryKind::kMram);
  EXPECT_STREQ(to_string(Space::kHpMram), "HP-MRAM");
  EXPECT_EQ(all_spaces().size(), kSpaceCount);
}

TEST_F(CostModelTest, TimePerWeightHandComputed) {
  // HP-SRAM: 10 uses * (1.12 + 5.52) ns / 4 modules = 16.6 ns.
  EXPECT_EQ(model.at(Space::kHpSram).time_per_weight, Time::ns(16.6));
  // LP-MRAM: 10 * (2.96 + 10.68) / 4 = 34.1 ns.
  EXPECT_EQ(model.at(Space::kLpMram).time_per_weight, Time::ns(34.1));
}

TEST_F(CostModelTest, DynEnergyPerWeightHandComputed) {
  // HP-MRAM: 10 * (428.48 mW * 2.62 ns + 0.9 mW * 5.52 ns).
  EXPECT_NEAR(model.at(Space::kHpMram).dyn_per_weight.as_pj(),
              10 * (1122.62 + 4.968), 0.5);
  // LP-SRAM: 10 * (177.3 * 1.41 + 0.51 * 10.68).
  EXPECT_NEAR(model.at(Space::kLpSram).dyn_per_weight.as_pj(),
              10 * (249.99 + 5.447), 0.5);
}

TEST_F(CostModelTest, RetentionOnlyOnSram) {
  EXPECT_DOUBLE_EQ(model.at(Space::kHpMram).leak_per_weight.as_mw(), 0.0);
  EXPECT_DOUBLE_EQ(model.at(Space::kLpMram).leak_per_weight.as_mw(), 0.0);
  // HP-SRAM: 23.29 mW / 65536 weights per module.
  EXPECT_NEAR(model.at(Space::kHpSram).leak_per_weight.as_uw(), 23290.0 / 65536, 0.01);
  EXPECT_NEAR(model.at(Space::kLpSram).leak_per_weight.as_uw(), 5450.0 / 65536, 0.01);
}

TEST_F(CostModelTest, Capacities) {
  for (const Space s : all_spaces()) {
    EXPECT_EQ(model.at(s).capacity_weights, 4u * 64 * 1024) << to_string(s);
  }
}

TEST_F(CostModelTest, MissingMramGetsZeroCapacity) {
  const CostModel m = CostModel::build(PowerSpec::paper_45nm(),
                                       ClusterShape{8, 0, 128 * 1024},
                                       ClusterShape{0, 0, 0}, 10.0);
  EXPECT_EQ(m.at(Space::kHpMram).capacity_weights, 0u);
  EXPECT_EQ(m.at(Space::kHpSram).capacity_weights, 8u * 128 * 1024);
  EXPECT_EQ(m.at(Space::kLpSram).capacity_weights, 0u);
}

TEST_F(CostModelTest, TaskTimeIsMaxOfClusterSums) {
  Allocation a;
  a[Space::kHpMram] = 100;
  a[Space::kHpSram] = 100;
  a[Space::kLpSram] = 50;
  // HP: 100 * 20.35 + 100 * 16.6 = 3695 ns; LP: 50 * 30.225 = 1511.25 ns.
  const Time hp = cluster_time(model, a, ClusterKind::kHighPerformance);
  const Time lp = cluster_time(model, a, ClusterKind::kLowPower);
  EXPECT_EQ(hp, Time::ns(3695.0));
  EXPECT_EQ(lp, Time::ps(1511250));
  EXPECT_EQ(task_time(model, a), hp);
}

TEST_F(CostModelTest, EnergiesAddUp) {
  Allocation a;
  a[Space::kHpSram] = 10;
  a[Space::kLpMram] = 20;
  const Energy dyn = task_dynamic_energy(model, a);
  const double expect_dyn = 10 * model.at(Space::kHpSram).dyn_per_weight.as_pj() +
                            20 * model.at(Space::kLpMram).dyn_per_weight.as_pj();
  EXPECT_NEAR(dyn.as_pj(), expect_dyn, 0.01);

  const Energy ret = retention_energy(model, a, Time::us(1.0));
  const double expect_ret =
      10 * model.at(Space::kHpSram).leak_per_weight.as_mw() * 1000.0;  // mW * ns
  EXPECT_NEAR(ret.as_pj(), expect_ret, 0.01);
  EXPECT_NEAR(task_energy(model, a, Time::us(1.0)).as_pj(), expect_dyn + expect_ret, 0.01);
}

TEST_F(CostModelTest, FitsChecksCapacities) {
  Allocation a;
  a[Space::kHpSram] = 4 * 64 * 1024;
  EXPECT_TRUE(fits(model, a));
  a[Space::kHpSram] += 1;
  EXPECT_FALSE(fits(model, a));
}

TEST_F(CostModelTest, AllocationHelpers) {
  Allocation a;
  a[Space::kHpMram] = 5;
  a[Space::kLpSram] = 7;
  EXPECT_EQ(a.total(), 12u);
  EXPECT_NE(a.to_string().find("HP-MRAM: 5"), std::string::npos);
  Allocation b = a;
  EXPECT_EQ(a, b);
  b[Space::kLpSram] = 8;
  EXPECT_FALSE(a == b);
}

TEST_F(CostModelTest, MovementFieldsPopulated) {
  const auto& hp_mram = model.at(Space::kHpMram);
  EXPECT_EQ(hp_mram.read_latency, Time::ns(2.62));
  EXPECT_EQ(hp_mram.write_latency, Time::ns(11.81));
  EXPECT_NEAR(hp_mram.write_energy.as_pj(), 133.78 * 11.81, 0.5);
  EXPECT_EQ(hp_mram.modules, 4u);
}

}  // namespace
}  // namespace hhpim::placement
