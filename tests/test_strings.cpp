#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace hhpim {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("one", ','), (std::vector<std::string>{"one"}));
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, FormatSi) {
  EXPECT_EQ(format_si(1.234e-3, 3, "J"), "1.234 mJ");
  EXPECT_EQ(format_si(42e-9, 3, "s"), "42.000 ns");
  EXPECT_EQ(format_si(2.5e6, 1, "Hz"), "2.5 MHz");
  EXPECT_EQ(format_si(1.0, 0, "B"), "1 B");
}

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t{{"a", "b", "c"}};
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.render().find("| only |"), std::string::npos);
}

TEST(Table, RuleSeparatesSections) {
  Table t{{"x"}};
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.render();
  // header rule + top + bottom + inserted = 4 horizontal rules
  std::size_t rules = 0;
  for (std::size_t pos = s.find("+-"); pos != std::string::npos; pos = s.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=7", "--flag", "pos1"};
  const Cli cli{5, argv};
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "pos1");
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 3.0);
}

TEST(Cli, BoolSpellings) {
  const char* argv[] = {"prog", "--a=TRUE", "--b=no", "--c=1", "--d=off"};
  const Cli cli{5, argv};
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

}  // namespace
}  // namespace hhpim
