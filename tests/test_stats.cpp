#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace hhpim::sim {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance
}

TEST(Summary, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeEqualsCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(5.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Histogram, BinsAndRanges) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.25, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bins()[0], 10u);
}

TEST(Histogram, QuantileLinearInterpolation) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  const std::string s = h.render();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(Tracer, DisabledDropsRecords) {
  Tracer t;
  t.record(Time::zero(), "a", "b");
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, CapturesAndCounts) {
  Tracer t;
  t.enable(true);
  t.record(Time::ns(1), "pim0", "LOAD burst=4");
  t.record(Time::ns(2), "pim0", "EXECUTE");
  t.record(Time::ns(3), "pim1", "LOAD burst=2");
  EXPECT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.count_matching("LOAD"), 2u);
  EXPECT_NE(t.dump().find("pim1"), std::string::npos);
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace hhpim::sim
