// Integration: the RISC-V host core drives the PIM cluster through the
// memory-mapped PIM port, exactly like the paper's Rocket core feeding the
// PIM Instruction Queue over AXI.
#include <gtest/gtest.h>

#include "isa/instruction.hpp"
#include "pim/cluster.hpp"
#include "riscv/bus.hpp"
#include "riscv/cpu.hpp"
#include "riscv/rv_asm.hpp"

namespace hhpim {
namespace {

using energy::ClusterKind;
using energy::EnergyLedger;
using energy::PowerSpec;

class RiscvPimSystem : public ::testing::Test {
 protected:
  RiscvPimSystem()
      : cluster(pim::ClusterConfig{"hp", ClusterKind::kHighPerformance, 4, 64 * 1024,
                                   64 * 1024},
                spec, &ledger),
        ram(64 * 1024),
        port([this](std::uint32_t word) { return push(word); },
             [this] { return status(); }, [this] { doorbell(); }),
        cpu(&bus) {
    bus.map(0x0000'0000, 64 * 1024, &ram);
    bus.map(0x4000'0000, 0x100, &port);
  }

  bool push(std::uint32_t word) {
    return cluster.controller().queue().push(*isa::decode(word));
  }

  std::uint32_t status() {
    auto& q = cluster.controller().queue();
    return (q.full() ? 1u : 0u) | (q.empty() ? 2u : 0u);
  }

  void doorbell() {
    std::vector<isa::Instruction> program;
    auto& q = cluster.controller().queue();
    while (auto inst = q.pop()) program.push_back(*inst);
    cluster.controller().run_program(pim_time, program);
    pim_time = cluster.busy_until();
  }

  void run(const std::string& source) {
    const auto r = riscv::assemble_rv32(source);
    ASSERT_TRUE(std::holds_alternative<std::vector<std::uint32_t>>(r));
    const auto& words = std::get<std::vector<std::uint32_t>>(r);
    for (std::size_t i = 0; i < words.size(); ++i) {
      ram.store(static_cast<std::uint32_t>(i * 4), 4, words[i]);
    }
    cpu.run();
  }

  PowerSpec spec = PowerSpec::paper_45nm();
  EnergyLedger ledger;
  pim::Cluster cluster;
  riscv::Ram ram;
  riscv::PimPort port;
  riscv::Bus bus;
  riscv::Cpu cpu;
  Time pim_time = Time::zero();
};

TEST_F(RiscvPimSystem, CoreIssuesMacBurstThroughQueue) {
  // mac.sram m0-3, 256 -> category 0, opcode 0, mem SRAM(2), mask 0x0f.
  const std::uint32_t mac = isa::encode(isa::make_mac(0x0f, isa::MemSel::kSram, 256));
  const std::uint32_t halt = isa::encode(isa::make_halt());
  run(R"(
      li t0, 0x40000000
      li t1, )" + std::to_string(mac) + R"(
      sw t1, 0(t0)        # push MAC instruction
      li t1, )" + std::to_string(halt) + R"(
      sw t1, 0(t0)        # push HALT
      sw zero, 8(t0)      # ring the doorbell
      lw a0, 4(t0)        # read back status
      ecall
  )");
  EXPECT_EQ(cpu.halt_reason(), riscv::HaltReason::kEcall);
  // All four modules ran 256 MACs.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.module(i).total_macs(), 256u);
  }
  // Status: queue drained -> empty bit set, full bit clear.
  EXPECT_EQ(cpu.reg(10), 2u);
  EXPECT_EQ(port.pushes(), 2u);
  EXPECT_EQ(port.doorbells(), 1u);
  EXPECT_GT(ledger.total().as_pj(), 0.0);
}

TEST_F(RiscvPimSystem, LoopedSubmissionAccumulatesWork) {
  const std::uint32_t mac = isa::encode(isa::make_mac(0x01, isa::MemSel::kMram, 16));
  run(R"(
      li t0, 0x40000000
      li t1, )" + std::to_string(mac) + R"(
      li t2, 10          # ten bursts
    again:
      sw t1, 0(t0)
      sw zero, 8(t0)
      addi t2, t2, -1
      bnez t2, again
      ecall
  )");
  EXPECT_EQ(cluster.module(0).total_macs(), 160u);
  EXPECT_EQ(cluster.module(1).total_macs(), 0u);
  // PIM time advanced monotonically across doorbells.
  EXPECT_EQ(pim_time, cluster.busy_until());
  EXPECT_GT(pim_time, Time::zero());
}

}  // namespace
}  // namespace hhpim
