#include "mem/nvsim_lite.hpp"

#include <gtest/gtest.h>

namespace hhpim::mem {
namespace {

using energy::MemoryKind;

TEST(NvsimLite, ReproducesTableIIIAtAnchors) {
  const NvsimLite model;
  const auto hp = model.evaluate({MemoryKind::kMram, 64 * 1024, 1.2, 45.0});
  EXPECT_NEAR(hp.timing.read.as_ns(), 2.62, 0.01);
  EXPECT_NEAR(hp.timing.write.as_ns(), 11.81, 0.01);
  const auto lp = model.evaluate({MemoryKind::kMram, 64 * 1024, 0.8, 45.0});
  EXPECT_NEAR(lp.timing.read.as_ns(), 2.96, 0.01);
  EXPECT_NEAR(lp.timing.write.as_ns(), 14.65, 0.01);
  const auto sram_lp = model.evaluate({MemoryKind::kSram, 64 * 1024, 0.8, 45.0});
  EXPECT_NEAR(sram_lp.timing.read.as_ns(), 1.41, 0.01);
}

TEST(NvsimLite, ReproducesTableVAtAnchors) {
  const NvsimLite model;
  const auto hp = model.evaluate({MemoryKind::kSram, 64 * 1024, 1.2, 45.0});
  EXPECT_NEAR(hp.power.dyn_read.as_mw(), 508.93, 0.5);
  EXPECT_NEAR(hp.power.dyn_write.as_mw(), 500.0, 0.5);
  EXPECT_NEAR(hp.power.leakage.as_mw(), 23.29, 0.05);
  const auto lp = model.evaluate({MemoryKind::kSram, 64 * 1024, 0.8, 45.0});
  EXPECT_NEAR(lp.power.dyn_read.as_mw(), 177.30, 0.5);
  EXPECT_NEAR(lp.power.leakage.as_mw(), 5.45, 0.05);
}

TEST(NvsimLite, MakeSpecMatchesPaperSpec) {
  const NvsimLite model;
  const auto derived = model.make_spec(1.2, 0.8);
  const auto paper = energy::PowerSpec::paper_45nm();
  EXPECT_NEAR(derived.hp.mram_timing.read.as_ns(), paper.hp.mram_timing.read.as_ns(), 0.01);
  EXPECT_NEAR(derived.lp.sram_power.leakage.as_mw(), paper.lp.sram_power.leakage.as_mw(), 0.05);
  EXPECT_NEAR(derived.hp.pe.mac_latency.as_ns(), paper.hp.pe.mac_latency.as_ns(), 0.01);
  EXPECT_NEAR(derived.lp.pe.dynamic.as_mw(), paper.lp.pe.dynamic.as_mw(), 0.01);
}

TEST(NvsimLite, DelayIncreasesAsVoltageDrops) {
  const NvsimLite model;
  double prev = 0.0;
  for (const double vdd : {1.2, 1.1, 1.0, 0.9, 0.8, 0.7}) {
    const auto r = model.evaluate({MemoryKind::kSram, 64 * 1024, vdd, 45.0});
    EXPECT_GT(r.timing.read.as_ns(), prev);
    prev = r.timing.read.as_ns();
  }
}

TEST(NvsimLite, LeakageDecreasesAsVoltageDrops) {
  const NvsimLite model;
  const auto hi = model.evaluate({MemoryKind::kSram, 64 * 1024, 1.2, 45.0});
  const auto lo = model.evaluate({MemoryKind::kSram, 64 * 1024, 0.9, 45.0});
  EXPECT_GT(hi.power.leakage.as_mw(), lo.power.leakage.as_mw());
}

TEST(NvsimLite, CapacityScaling) {
  const NvsimLite model;
  const auto small = model.evaluate({MemoryKind::kSram, 64 * 1024, 1.2, 45.0});
  const auto big = model.evaluate({MemoryKind::kSram, 256 * 1024, 1.2, 45.0});
  // Delay grows with sqrt(capacity): 2x for 4x capacity.
  EXPECT_NEAR(big.timing.read.as_ns() / small.timing.read.as_ns(), 2.0, 0.01);
  // Leakage grows linearly: 4x.
  EXPECT_NEAR(big.power.leakage.as_mw() / small.power.leakage.as_mw(), 4.0, 0.01);
}

TEST(NvsimLite, SubThresholdVoltageRejected) {
  const NvsimLite model;
  EXPECT_THROW(model.evaluate({MemoryKind::kSram, 64 * 1024, 0.2, 45.0}),
               std::invalid_argument);
}

TEST(NvsimLite, PeScalesBetweenAnchors) {
  const NvsimLite model;
  const auto mid = model.evaluate_pe(1.0);
  EXPECT_GT(mid.mac_latency.as_ns(), 5.52);
  EXPECT_LT(mid.mac_latency.as_ns(), 10.68);
  EXPECT_GT(mid.dynamic.as_mw(), 0.51);
  EXPECT_LT(mid.dynamic.as_mw(), 0.90);
}

}  // namespace
}  // namespace hhpim::mem
