#include "mem/bank.hpp"

#include <gtest/gtest.h>

namespace hhpim::mem {
namespace {

using energy::Activity;
using energy::ClusterKind;
using energy::EnergyLedger;
using energy::MemoryKind;
using energy::PowerSpec;
using namespace hhpim::literals;

class BankTest : public ::testing::Test {
 protected:
  PowerSpec spec = PowerSpec::paper_45nm();
  EnergyLedger ledger;
};

TEST_F(BankTest, TimedReadMatchesTableIII) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 64 * 1024, &ledger);
  sram.power_on(Time::zero());
  const auto r = sram.read(Time::zero(), 0, 1, nullptr);
  EXPECT_EQ(r.complete - r.start, Time::ns(1.12));
  EXPECT_NEAR(r.energy.as_pj(), 508.93 * 1.12, 0.01);
}

TEST_F(BankTest, BackToBackAccessesQueue) {
  Bank mram = make_mram(spec, ClusterKind::kLowPower, "m", 64 * 1024, &ledger);
  mram.power_on(Time::zero());
  const auto r1 = mram.read(Time::zero(), 0, 1, nullptr);
  const auto r2 = mram.read(Time::zero(), 1, 1, nullptr);  // queued behind r1
  EXPECT_EQ(r2.start, r1.complete);
  EXPECT_EQ(r2.complete, Time::ns(2 * 2.96));
}

TEST_F(BankTest, BurstReadScalesLinear) {
  Bank sram = make_sram(spec, ClusterKind::kLowPower, "s", 64 * 1024, &ledger);
  sram.power_on(Time::zero());
  const auto r = sram.read(Time::zero(), 0, 100, nullptr);
  EXPECT_EQ(r.complete, Time::ns(141.0));
  EXPECT_EQ(sram.read_count(), 100u);
}

TEST_F(BankTest, WriteStoresData) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 1024, &ledger);
  sram.power_on(Time::zero());
  const std::uint8_t data[4] = {1, 2, 3, 4};
  sram.write(Time::zero(), 8, 4, data);
  std::uint8_t out[4] = {};
  sram.read(Time::ns(100), 8, 4, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_TRUE(sram.data_valid());
}

TEST_F(BankTest, OutOfRangeThrows) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 64, &ledger);
  sram.power_on(Time::zero());
  EXPECT_THROW(sram.read(Time::zero(), 64, 1, nullptr), std::out_of_range);
  EXPECT_THROW(sram.write(Time::zero(), 60, 5, nullptr), std::out_of_range);
  EXPECT_THROW(sram.peek(64), std::out_of_range);
}

TEST_F(BankTest, AccessWhileGatedThrows) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 64, &ledger);
  EXPECT_THROW(sram.read(Time::zero(), 0, 1, nullptr), std::logic_error);
}

TEST_F(BankTest, SramLosesDataOnGating) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 64, &ledger);
  sram.power_on(Time::zero());
  sram.poke(0, 42);
  sram.power_off(1_ns);
  sram.power_on(2_ns);
  EXPECT_FALSE(sram.data_valid());
  EXPECT_EQ(sram.peek(0), 0);  // contents cleared
}

TEST_F(BankTest, MramRetainsDataAcrossGating) {
  Bank mram = make_mram(spec, ClusterKind::kHighPerformance, "m", 64, &ledger);
  mram.power_on(Time::zero());
  mram.poke(0, 42);
  mram.power_off(1_ns);
  mram.power_on(2_ns);
  EXPECT_TRUE(mram.data_valid());
  EXPECT_EQ(mram.peek(0), 42);
}

TEST_F(BankTest, LeakageScalesWithCapacity) {
  Bank b64 = make_sram(spec, ClusterKind::kHighPerformance, "a", 64 * 1024, &ledger);
  Bank b128 = make_sram(spec, ClusterKind::kHighPerformance, "b", 128 * 1024, &ledger);
  EXPECT_DOUBLE_EQ(b64.leakage_power().as_mw(), 23.29);
  EXPECT_DOUBLE_EQ(b128.leakage_power().as_mw(), 46.58);
}

TEST_F(BankTest, LeakageChargedOnlyWhilePowered) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 64 * 1024, &ledger);
  sram.power_on(Time::zero());
  sram.power_off(Time::ns(10));
  sram.settle(Time::ns(1000));
  // 23.29 mW * 10 ns.
  EXPECT_NEAR(ledger.total(Activity::kLeakage).as_pj(), 232.9, 0.01);
}

TEST_F(BankTest, SubBankGatingPowersOnlyNeededBanks) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 128 * 1024, &ledger);
  EXPECT_EQ(sram.subbank_count(), 8u);  // 128 kB / 16 kB sub-arrays
  // 10 kB of weights -> one 16 kB sub-array powered.
  sram.set_active_bytes(10 * 1024, Time::zero());
  EXPECT_EQ(sram.active_bytes(), 16u * 1024);
  sram.settle(Time::ns(10));
  // Leakage: 46.58 mW * (16/128) for 10 ns.
  EXPECT_NEAR(ledger.total(Activity::kLeakage).as_pj(), 46.58 * 16.0 / 128.0 * 10.0, 0.01);
  // Zero bytes gates the macro entirely.
  sram.set_active_bytes(0, Time::ns(10));
  EXPECT_FALSE(sram.is_on());
}

TEST_F(BankTest, SubBankGatingFullCapacity) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 128 * 1024, &ledger);
  sram.set_active_bytes(127 * 1024, Time::zero());
  EXPECT_EQ(sram.active_bytes(), 128u * 1024);
  sram.settle(Time::ns(10));
  EXPECT_NEAR(ledger.total(Activity::kLeakage).as_pj(), 465.8, 0.01);
}

TEST_F(BankTest, ChargeOnlyAccountingSkipsTimeline) {
  Bank sram = make_sram(spec, ClusterKind::kHighPerformance, "s", 64, &ledger);
  sram.power_on(Time::zero());
  const Energy e = sram.charge_reads(10);
  EXPECT_NEAR(e.as_pj(), 10 * 508.93 * 1.12, 0.1);
  EXPECT_EQ(sram.busy_until(), Time::zero());  // timeline untouched
  EXPECT_EQ(sram.read_count(), 10u);
  EXPECT_DOUBLE_EQ(sram.dynamic_energy().as_pj(), e.as_pj());
}

TEST_F(BankTest, UnalignedAccessRejectedForWideWords) {
  BankConfig c;
  c.name = "w4";
  c.word_bytes = 4;
  c.capacity_bytes = 64;
  c.timing = spec.hp.sram_timing;
  c.power = spec.hp.sram_power;
  Bank b{c, &ledger};
  b.power_on(Time::zero());
  EXPECT_THROW(b.read(Time::zero(), 2, 1, nullptr), std::out_of_range);
  EXPECT_NO_THROW(b.read(Time::zero(), 4, 1, nullptr));
}

}  // namespace
}  // namespace hhpim::mem
