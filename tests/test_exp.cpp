// Experiment-runner suite: grid expansion, shared-slice protocol, runner vs
// direct Processor parity, the PowerSpec override, and the load-bearing
// property of the subsystem — the same spec run at 1 and 8 threads yields
// byte-identical JSON and CSV.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "hhpim/metrics.hpp"
#include "hhpim/processor.hpp"
#include "mem/nvsim_lite.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

namespace hhpim::exp {
namespace {

sys::SystemConfig fast_config() {
  sys::SystemConfig c;
  c.lut_t_entries = 16;
  c.lut_k_blocks = 16;
  return c;
}

ExperimentSpec small_grid(int scenarios_n = 2, int slices = 6) {
  ExperimentSpec spec;
  spec.name = "test-grid";
  const auto table1 = sys::ArchConfig::paper_table1();
  spec.archs.assign(table1.begin(), table1.end());
  spec.models = {nn::zoo::efficientnet_b0()};
  workload::ScenarioConfig wc;
  wc.slices = slices;
  const std::array<workload::Scenario, 3> kinds = {workload::Scenario::kPulsing,
                                                   workload::Scenario::kRandom,
                                                   workload::Scenario::kBurstDecay};
  for (int i = 0; i < scenarios_n; ++i) {
    spec.scenarios.push_back(ScenarioSpec::of(kinds[static_cast<std::size_t>(i) % 3], wc));
  }
  spec.variants.push_back({"", fast_config()});
  return spec;
}

TEST(ExperimentSpec, ExpandCardinalityAndOrder) {
  const ExperimentSpec spec = small_grid(2);
  EXPECT_EQ(spec.run_count(), 8u);  // 4 archs x 1 model x 2 scenarios
  const auto runs = spec.expand();
  ASSERT_EQ(runs.size(), 8u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
  }
  // Scenario is the middle axis, arch the innermost.
  EXPECT_EQ(runs[0].arch, "Baseline-PIM");
  EXPECT_EQ(runs[3].arch, "HH-PIM");
  EXPECT_EQ(runs[0].scenario, runs[3].scenario);
  EXPECT_NE(runs[0].scenario, runs[4].scenario);
}

TEST(ExperimentSpec, EmptyAxisThrows) {
  ExperimentSpec spec;
  EXPECT_THROW((void)spec.expand(), std::invalid_argument);
}

TEST(ExperimentSpec, LoadsIdenticalAcrossArchsWithinCell) {
  const auto runs = small_grid(2).expand();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(runs[i].loads, runs[0].loads);
    EXPECT_EQ(runs[i].seed, runs[0].seed);
  }
}

TEST(ExperimentSpec, SeedsDeriveFromGridSeed) {
  ExperimentSpec a = small_grid(1);
  ExperimentSpec b = small_grid(1);
  b.seed = a.seed + 1;
  // The random scenario is index 1 in small_grid(2); use kRandom directly.
  a.scenarios = {ScenarioSpec::of(workload::Scenario::kRandom)};
  b.scenarios = {ScenarioSpec::of(workload::Scenario::kRandom)};
  const auto ra = a.expand();
  const auto rb = b.expand();
  EXPECT_NE(ra[0].seed, rb[0].seed);
  EXPECT_NE(ra[0].loads, rb[0].loads);
}

TEST(ExperimentSpec, SharedSliceMatchesProcessorDerivation) {
  const auto runs = small_grid(1).expand();
  sys::SystemConfig hh = fast_config();
  hh.arch = sys::ArchConfig::hhpim();
  const sys::Processor p{hh, nn::zoo::efficientnet_b0()};
  for (const auto& r : runs) {
    EXPECT_EQ(r.config.slice, p.slice_length()) << r.arch;
  }
  // And derived_slice_length agrees with the Processor's own derivation.
  EXPECT_EQ(sys::derived_slice_length(hh, nn::zoo::efficientnet_b0()), p.slice_length());
}

TEST(Runner, MatchesDirectProcessorRun) {
  const auto runs = small_grid(1).expand();
  const RunResult via_runner = Runner::execute(runs[3]);  // HH-PIM
  ASSERT_EQ(via_runner.arch, "HH-PIM");

  sys::Processor p{runs[3].config, runs[3].model};
  const sys::RunStats direct = p.run_scenario(runs[3].loads);
  EXPECT_EQ(via_runner.total_energy_pj, direct.total_energy.as_pj());
  EXPECT_EQ(via_runner.tasks, direct.tasks);
  EXPECT_EQ(via_runner.deadline_violations, direct.deadline_violations);
  EXPECT_EQ(via_runner.total_time_ps, direct.total_time.as_ps());
}

TEST(Runner, GridIsByteIdenticalAcrossThreadCounts) {
  // The acceptance grid: 4 archs x 3 models x 2 scenarios = 24 runs.
  ExperimentSpec spec = small_grid(2, 4);
  spec.models = nn::zoo::paper_models();
  ASSERT_GE(spec.run_count(), 24u);

  RunnerOptions one;
  one.threads = 1;
  RunnerOptions eight;
  eight.threads = 8;
  const ResultSet r1 = Runner{one}.run(spec);
  const ResultSet r8 = Runner{eight}.run(spec);

  EXPECT_EQ(r1.to_json(), r8.to_json());
  EXPECT_EQ(r1.to_csv(), r8.to_csv());
  EXPECT_FALSE(r1.to_json().empty());
}

TEST(Runner, FilteredSubsetKeepsSparseIndices) {
  // run_all must accept a filtered subset of an expanded grid whose
  // RunSpec::index values are sparse, returning results in input order.
  auto runs = small_grid(2).expand();
  std::vector<RunSpec> subset;
  for (auto& r : runs) {
    if (r.arch == "HH-PIM") subset.push_back(std::move(r));
  }
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0].index, 3u);
  EXPECT_EQ(subset[1].index, 7u);
  RunnerOptions opts;
  opts.threads = 2;
  const ResultSet rs = Runner{opts}.run_all(std::move(subset));
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.runs()[0].index, 3u);  // grid coordinate echoed
  EXPECT_EQ(rs.runs()[1].index, 7u);
  EXPECT_EQ(rs.runs()[0].arch, "HH-PIM");
}

TEST(ExperimentSpec, FixedScenarioWithEmptyLoadsStaysEmpty) {
  ExperimentSpec spec = small_grid(1);
  spec.scenarios = {ScenarioSpec::fixed("empty", {})};
  const auto runs = spec.expand();
  for (const auto& r : runs) EXPECT_TRUE(r.loads.empty());
}

TEST(Runner, KeepSlicesPopulatesPerSliceMetrics) {
  ExperimentSpec spec = small_grid(1, 4);
  RunnerOptions opts;
  opts.threads = 1;
  opts.keep_slices = true;
  const ResultSet rs = Runner{opts}.run(spec);
  for (const auto& r : rs.runs()) {
    ASSERT_EQ(static_cast<int>(r.slice_metrics.size()), r.slices);
    double sum = 0;
    for (const auto& s : r.slice_metrics) sum += s.energy_pj;
    EXPECT_NEAR(sum, r.total_energy_pj, 1e-6 * r.total_energy_pj + 1e-9);
  }
  // Per-slice JSON only appears when requested.
  EXPECT_NE(rs.to_json(true).find("slice_metrics"), std::string::npos);
  EXPECT_EQ(rs.to_json(false).find("slice_metrics"), std::string::npos);
}

TEST(Runner, PropagatesRunFailures) {
  ExperimentSpec spec = small_grid(1);
  // A model too large for Baseline-PIM's 1 MB of SRAM makes that run throw
  // inside a worker; the runner must surface it to the caller.
  nn::Model huge{"huge", 0.8};
  huge.input({64, 32, 32});
  huge.conv("c", 4096, 3, 1);  // 4096 * 64 * 9 ≈ 2.36 M structural params
  huge.calibrate(2 * 1000 * 1000, 20 * 1000 * 1000);
  spec.archs = {sys::ArchConfig::baseline()};
  spec.share_hhpim_slice = false;  // no HH-PIM in the grid
  spec.models = {huge};
  RunnerOptions opts;
  opts.threads = 2;
  EXPECT_THROW((void)Runner{opts}.run(spec), std::invalid_argument);
}

TEST(ResultSet, LookupByCoordinates) {
  const ResultSet rs = Runner{}.run(small_grid(1));
  EXPECT_NE(rs.find("HH-PIM", "EfficientNet-B0", "high-low-pulsing"), nullptr);
  EXPECT_EQ(rs.find("HH-PIM", "EfficientNet-B0", "nope"), nullptr);
  EXPECT_THROW((void)rs.at("HH-PIM", "EfficientNet-B0", "nope"), std::out_of_range);
  const RunResult& hh = rs.at("HH-PIM", "EfficientNet-B0", "high-low-pulsing");
  EXPECT_GT(hh.total_energy_pj, 0.0);
  EXPECT_GT(hh.slice_ps, 0);
}

TEST(SystemConfig, PowerSpecOverrideDefaultIsPaperSpec) {
  // make_spec(1.2, 0.8) reproduces paper_45nm exactly, so overriding with it
  // must not change any metric.
  const auto runs = small_grid(1).expand();
  RunSpec with_override = runs[3];
  with_override.config.power = mem::NvsimLite{}.make_spec(1.2, 0.8);
  const RunResult a = Runner::execute(runs[3]);
  const RunResult b = Runner::execute(with_override);
  EXPECT_EQ(a.total_energy_pj, b.total_energy_pj);
  EXPECT_EQ(a.slice_ps, b.slice_ps);
}

TEST(SystemConfig, PowerSpecOverrideChangesTheOperatingPoint) {
  const auto runs = small_grid(1).expand();
  RunSpec lowered = runs[3];
  lowered.config.power = mem::NvsimLite{}.make_spec(1.2, 0.6);  // slower LP cluster
  lowered.config.slice = Time::zero();  // re-derive T for the new spec
  const RunResult a = Runner::execute(runs[3]);
  const RunResult b = Runner::execute(lowered);
  EXPECT_NE(a.slice_ps, b.slice_ps);
  EXPECT_NE(a.total_energy_pj, b.total_energy_pj);
}

}  // namespace
}  // namespace hhpim::exp
