#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include "workload/task.hpp"

namespace hhpim::workload {
namespace {

TEST(Scenario, Case1LowConstant) {
  const auto loads = generate(Scenario::kLowConstant, {});
  EXPECT_EQ(loads.size(), 50u);
  for (const int l : loads) EXPECT_EQ(l, 2);
}

TEST(Scenario, Case2HighConstant) {
  const auto loads = generate(Scenario::kHighConstant, {});
  for (const int l : loads) EXPECT_EQ(l, 10);
}

TEST(Scenario, Case3PeriodicSpikes) {
  const auto loads = generate(Scenario::kPeriodicSpike, {});
  int spikes = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i % 10 == 0) {
      EXPECT_EQ(loads[i], 10) << i;
      ++spikes;
    } else {
      EXPECT_EQ(loads[i], 2) << i;
    }
  }
  EXPECT_EQ(spikes, 5);
}

TEST(Scenario, Case4FrequentSpikes) {
  const auto loads = generate(Scenario::kPeriodicSpikeFrequent, {});
  int spikes = 0;
  for (const int l : loads) spikes += l == 10 ? 1 : 0;
  EXPECT_EQ(spikes, 13);  // every 4th of 50 slices
}

TEST(Scenario, Case5PulsingAlternates) {
  const auto loads = generate(Scenario::kPulsing, {});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const bool high = (i / 5) % 2 == 0;
    EXPECT_EQ(loads[i], high ? 10 : 2) << i;
  }
}

TEST(Scenario, Case6RandomDeterministicAndInRange) {
  const auto a = generate(Scenario::kRandom, {});
  const auto b = generate(Scenario::kRandom, {});
  EXPECT_EQ(a, b);  // same seed, same trace
  ScenarioConfig other;
  other.seed = 999;
  const auto c = generate(Scenario::kRandom, other);
  EXPECT_NE(a, c);
  bool varied = false;
  for (const int l : a) {
    EXPECT_GE(l, 2);
    EXPECT_LE(l, 10);
    if (l != a[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Scenario, ConfigValidation) {
  ScenarioConfig bad;
  bad.slices = 0;
  EXPECT_THROW(generate(Scenario::kLowConstant, bad), std::invalid_argument);
  bad.slices = 10;
  bad.low = 5;
  bad.high = 2;
  EXPECT_THROW(generate(Scenario::kLowConstant, bad), std::invalid_argument);
}

TEST(Scenario, NamesAndEnumeration) {
  EXPECT_STREQ(case_name(Scenario::kLowConstant), "Case 1");
  EXPECT_STREQ(case_name(Scenario::kRandom), "Case 6");
  EXPECT_STREQ(to_string(Scenario::kPulsing), "high-low-pulsing");
  EXPECT_EQ(all_scenarios().size(), 6u);
}

TEST(Scenario, SparklineLengthMatches) {
  const auto loads = generate(Scenario::kPulsing, {});
  EXPECT_EQ(sparkline(loads, 10).size(), loads.size());
}

TEST(TaskBuffer, FifoOrder) {
  TaskBuffer buf;
  TaskFactory factory{1000, 200};
  factory.emit(buf, 0, 3);
  EXPECT_EQ(buf.size(), 3u);
  const auto first = buf.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 0u);
  EXPECT_EQ(first->pim_macs, 1000u);
  EXPECT_EQ(first->core_ops, 200u);
  const auto second = buf.pop();
  EXPECT_EQ(second->id, 1u);
}

TEST(TaskBuffer, DrainEmptiesAll) {
  TaskBuffer buf;
  TaskFactory factory{10, 1};
  factory.emit(buf, 3, 5);
  const auto all = buf.drain();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(all[4].arrival_slice, 3);
  EXPECT_EQ(buf.total_enqueued(), 5u);
}

TEST(TaskBuffer, PopOnEmpty) {
  TaskBuffer buf;
  EXPECT_FALSE(buf.pop().has_value());
}

TEST(TaskFactory, IdsAreGloballyUnique) {
  TaskBuffer a, b;
  TaskFactory factory{1, 1};
  factory.emit(a, 0, 2);
  factory.emit(b, 1, 2);
  EXPECT_EQ(factory.issued(), 4u);
  EXPECT_EQ(b.pop()->id, 2u);
}

}  // namespace
}  // namespace hhpim::workload
