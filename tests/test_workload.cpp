#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "workload/task.hpp"

namespace hhpim::workload {
namespace {

TEST(Scenario, Case1LowConstant) {
  const auto loads = generate(Scenario::kLowConstant, {});
  EXPECT_EQ(loads.size(), 50u);
  for (const int l : loads) EXPECT_EQ(l, 2);
}

TEST(Scenario, Case2HighConstant) {
  const auto loads = generate(Scenario::kHighConstant, {});
  for (const int l : loads) EXPECT_EQ(l, 10);
}

TEST(Scenario, Case3PeriodicSpikes) {
  const auto loads = generate(Scenario::kPeriodicSpike, {});
  int spikes = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i % 10 == 0) {
      EXPECT_EQ(loads[i], 10) << i;
      ++spikes;
    } else {
      EXPECT_EQ(loads[i], 2) << i;
    }
  }
  EXPECT_EQ(spikes, 5);
}

TEST(Scenario, Case4FrequentSpikes) {
  const auto loads = generate(Scenario::kPeriodicSpikeFrequent, {});
  int spikes = 0;
  for (const int l : loads) spikes += l == 10 ? 1 : 0;
  EXPECT_EQ(spikes, 13);  // every 4th of 50 slices
}

TEST(Scenario, Case5PulsingAlternates) {
  const auto loads = generate(Scenario::kPulsing, {});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const bool high = (i / 5) % 2 == 0;
    EXPECT_EQ(loads[i], high ? 10 : 2) << i;
  }
}

TEST(Scenario, Case6RandomDeterministicAndInRange) {
  const auto a = generate(Scenario::kRandom, {});
  const auto b = generate(Scenario::kRandom, {});
  EXPECT_EQ(a, b);  // same seed, same trace
  ScenarioConfig other;
  other.seed = 999;
  const auto c = generate(Scenario::kRandom, other);
  EXPECT_NE(a, c);
  bool varied = false;
  for (const int l : a) {
    EXPECT_GE(l, 2);
    EXPECT_LE(l, 10);
    if (l != a[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Scenario, ConfigValidation) {
  ScenarioConfig bad;
  bad.slices = 0;
  EXPECT_THROW((void)generate(Scenario::kLowConstant, bad), std::invalid_argument);
  bad.slices = 10;
  bad.low = 5;
  bad.high = 2;
  EXPECT_THROW((void)generate(Scenario::kLowConstant, bad), std::invalid_argument);
}

TEST(Scenario, NamesAndEnumeration) {
  EXPECT_STREQ(case_name(Scenario::kLowConstant), "Case 1");
  EXPECT_STREQ(case_name(Scenario::kRandom), "Case 6");
  EXPECT_STREQ(to_string(Scenario::kPulsing), "high-low-pulsing");
  EXPECT_EQ(all_scenarios().size(), 6u);
  EXPECT_EQ(extended_scenarios().size(), 4u);
  EXPECT_STREQ(to_string(Scenario::kRamp), "ramp");
  EXPECT_STREQ(case_name(Scenario::kPoisson), "poisson");  // no paper case number
}

TEST(Scenario, RampIsMonotoneAndSpansTheRange) {
  const auto loads = generate(Scenario::kRamp, {});
  ASSERT_EQ(loads.size(), 50u);
  EXPECT_EQ(loads.front(), 2);
  EXPECT_EQ(loads.back(), 10);
  for (std::size_t i = 1; i < loads.size(); ++i) {
    EXPECT_GE(loads[i], loads[i - 1]) << i;
  }
}

TEST(Scenario, RampSingleSliceIsLow) {
  ScenarioConfig cfg;
  cfg.slices = 1;
  const auto loads = generate(Scenario::kRamp, cfg);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0], 2);
}

TEST(Scenario, BurstDecayPeaksAtPeriodStartAndDecays) {
  ScenarioConfig cfg;
  cfg.slices = 32;
  cfg.burst_period = 8;
  cfg.burst_decay = 0.5;
  const auto loads = generate(Scenario::kBurstDecay, cfg);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i % 8 == 0) {
      EXPECT_EQ(loads[i], cfg.high) << i;  // burst start hits the peak
    } else {
      EXPECT_LE(loads[i], loads[i - 1]) << i;  // monotone within a burst
    }
    EXPECT_GE(loads[i], cfg.low);
  }
  // Geometric decay with factor 0.5: 10, 6, 4, 3, ...
  EXPECT_EQ(loads[1], 6);
  EXPECT_EQ(loads[2], 4);
}

TEST(Scenario, BurstDecayValidation) {
  ScenarioConfig bad;
  bad.burst_decay = 0.0;
  EXPECT_THROW((void)generate(Scenario::kBurstDecay, bad), std::invalid_argument);
  bad.burst_decay = 0.5;
  bad.burst_period = 0;
  EXPECT_THROW((void)generate(Scenario::kBurstDecay, bad), std::invalid_argument);
}

TEST(Scenario, PoissonMeanWithinToleranceUnderFixedSeed) {
  ScenarioConfig cfg;
  cfg.slices = 4000;
  cfg.high = 100;  // cap far above the mean: clamping bias is negligible
  cfg.poisson_mean = 4.0;
  const auto loads = generate(Scenario::kPoisson, cfg);
  double sum = 0;
  for (const int l : loads) {
    EXPECT_GE(l, 0);
    EXPECT_LE(l, cfg.high);
    sum += l;
  }
  const double mean = sum / static_cast<double>(loads.size());
  EXPECT_NEAR(mean, cfg.poisson_mean, 0.15);  // ~5 sigma at n = 4000

  // Determinism: same seed, same draw sequence.
  EXPECT_EQ(generate(Scenario::kPoisson, cfg), loads);
  ScenarioConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(generate(Scenario::kPoisson, other), loads);
}

TEST(Scenario, PoissonClampsToHigh) {
  ScenarioConfig cfg;
  cfg.slices = 200;
  cfg.high = 3;
  cfg.poisson_mean = 8.0;
  for (const int l : generate(Scenario::kPoisson, cfg)) {
    EXPECT_LE(l, 3);
  }
}

TEST(Scenario, PoissonValidation) {
  ScenarioConfig bad;
  bad.poisson_mean = 0.0;
  EXPECT_THROW((void)generate(Scenario::kPoisson, bad), std::invalid_argument);
  // Means past the exp(-mean) underflow point would degenerate silently.
  bad.poisson_mean = 800.0;
  EXPECT_THROW((void)generate(Scenario::kPoisson, bad), std::invalid_argument);
}

TEST(Scenario, TraceReplayRoundTripsThroughAFile) {
  const std::vector<int> original = generate(Scenario::kPulsing, {});
  const std::string path = "test_workload_trace.tmp";
  save_trace(path, original);
  EXPECT_EQ(load_trace(path), original);

  ScenarioConfig cfg;
  cfg.trace_path = path;
  EXPECT_EQ(generate(Scenario::kTrace, cfg), original);
  std::remove(path.c_str());
}

TEST(Scenario, TraceReplayInlineAndValidation) {
  ScenarioConfig cfg;
  cfg.trace = {1, 0, 7, 3};
  EXPECT_EQ(generate(Scenario::kTrace, cfg), (std::vector<int>{1, 0, 7, 3}));

  ScenarioConfig empty;
  EXPECT_THROW((void)generate(Scenario::kTrace, empty), std::invalid_argument);
  ScenarioConfig negative;
  negative.trace = {1, -2};
  EXPECT_THROW((void)generate(Scenario::kTrace, negative), std::invalid_argument);
  ScenarioConfig missing;
  missing.trace_path = "does-not-exist.trace";
  EXPECT_THROW((void)generate(Scenario::kTrace, missing), std::runtime_error);
}

TEST(Scenario, SparklineLengthMatches) {
  const auto loads = generate(Scenario::kPulsing, {});
  EXPECT_EQ(sparkline(loads, 10).size(), loads.size());
}

TEST(TaskBuffer, FifoOrder) {
  TaskBuffer buf;
  TaskFactory factory{1000, 200};
  factory.emit(buf, 0, 3);
  EXPECT_EQ(buf.size(), 3u);
  const auto first = buf.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 0u);
  EXPECT_EQ(first->pim_macs, 1000u);
  EXPECT_EQ(first->core_ops, 200u);
  const auto second = buf.pop();
  EXPECT_EQ(second->id, 1u);
}

TEST(TaskBuffer, DrainEmptiesAll) {
  TaskBuffer buf;
  TaskFactory factory{10, 1};
  factory.emit(buf, 3, 5);
  const auto all = buf.drain();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(all[4].arrival_slice, 3);
  EXPECT_EQ(buf.total_enqueued(), 5u);
}

TEST(TaskBuffer, PopOnEmpty) {
  TaskBuffer buf;
  EXPECT_FALSE(buf.pop().has_value());
}

TEST(TaskFactory, IdsAreGloballyUnique) {
  TaskBuffer a, b;
  TaskFactory factory{1, 1};
  factory.emit(a, 0, 2);
  factory.emit(b, 1, 2);
  EXPECT_EQ(factory.issued(), 4u);
  EXPECT_EQ(b.pop()->id, 2u);
}

}  // namespace
}  // namespace hhpim::workload
