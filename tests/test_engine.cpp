#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hhpim::sim {
namespace {

using namespace hhpim::literals;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30_ns, [&] { order.push_back(3); });
  e.schedule_at(10_ns, [&] { order.push_back(1); });
  e.schedule_at(20_ns, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30_ns);
}

TEST(Engine, SameTimestampIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(1_ns, recurse);
  };
  e.schedule_at(0_ps, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 4_ns);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(10_ns, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5_ns, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventHandle h = e.schedule_at(1_ns, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));  // double-cancel fails
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterExecutionFails) {
  Engine e;
  const EventHandle h = e.schedule_at(1_ns, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(h));
  EXPECT_FALSE(e.cancel(EventHandle{}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(10_ns, [&] { order.push_back(1); });
  e.schedule_at(20_ns, [&] { order.push_back(2); });
  e.schedule_at(30_ns, [&] { order.push_back(3); });
  e.run_until(20_ns);  // inclusive
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 20_ns);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Engine, RunUntilAdvancesTimeWhenIdle) {
  Engine e;
  e.run_until(100_ns);
  EXPECT_EQ(e.now(), 100_ns);
}

TEST(Engine, StepExecutesOne) {
  Engine e;
  int n = 0;
  e.schedule_at(1_ns, [&] { ++n; });
  e.schedule_at(2_ns, [&] { ++n; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, ResetClearsState) {
  Engine e;
  e.schedule_at(1_ns, [] {});
  e.schedule_at(2_ns, [] {});
  e.step();
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.now(), Time::zero());
  // Can schedule at time zero again.
  bool ran = false;
  e.schedule_at(0_ps, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  Time last = Time::zero();
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    const Time at = Time::ps((i * 7919) % 100000);
    e.schedule_at(at, [&, at] {
      if (at < last) monotone = false;
      last = at;
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.executed(), 5000u);
}

}  // namespace
}  // namespace hhpim::sim
