#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

namespace hhpim::sim {
namespace {

using namespace hhpim::literals;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30_ns, [&] { order.push_back(3); });
  e.schedule_at(10_ns, [&] { order.push_back(1); });
  e.schedule_at(20_ns, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30_ns);
}

TEST(Engine, SameTimestampIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(1_ns, recurse);
  };
  e.schedule_at(0_ps, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 4_ns);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(10_ns, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5_ns, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventHandle h = e.schedule_at(1_ns, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));  // double-cancel fails
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterExecutionFails) {
  Engine e;
  const EventHandle h = e.schedule_at(1_ns, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(h));
  EXPECT_FALSE(e.cancel(EventHandle{}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(10_ns, [&] { order.push_back(1); });
  e.schedule_at(20_ns, [&] { order.push_back(2); });
  e.schedule_at(30_ns, [&] { order.push_back(3); });
  e.run_until(20_ns);  // inclusive
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 20_ns);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Engine, RunUntilAdvancesTimeWhenIdle) {
  Engine e;
  e.run_until(100_ns);
  EXPECT_EQ(e.now(), 100_ns);
}

TEST(Engine, StepExecutesOne) {
  Engine e;
  int n = 0;
  e.schedule_at(1_ns, [&] { ++n; });
  e.schedule_at(2_ns, [&] { ++n; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, ResetClearsState) {
  Engine e;
  e.schedule_at(1_ns, [] {});
  e.schedule_at(2_ns, [] {});
  e.step();
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.now(), Time::zero());
  // Can schedule at time zero again.
  bool ran = false;
  e.schedule_at(0_ps, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, PoolSlotsAreRecycledAcrossALongCascade) {
  // A long chain of one-schedules-the-next events: the Item pool must stay
  // bounded by the peak number of simultaneously queued events (here ~1), not
  // grow with the run length.
  Engine e;
  int remaining = 20000;
  std::function<void()> chain = [&] {
    if (--remaining > 0) e.schedule_after(1_ns, chain);
  };
  e.schedule_at(0_ps, chain);
  e.run();
  EXPECT_EQ(e.executed(), 20000u);
  EXPECT_LE(e.pool_slots(), 4u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, PoolSlotsBoundedAcrossRepeatedWaves) {
  // Slice-loop shape: schedule a wave, drain it, repeat. Slots from wave k
  // must be reused by wave k+1.
  Engine e;
  std::size_t peak_slots = 0;
  for (int wave = 0; wave < 200; ++wave) {
    for (int i = 0; i < 16; ++i) {
      e.schedule_after(Time::ns(static_cast<double>(i + 1)), [] {});
    }
    EXPECT_EQ(e.pending(), 16u);
    e.run();
    EXPECT_EQ(e.pending(), 0u);
    peak_slots = std::max(peak_slots, e.pool_slots());
  }
  EXPECT_EQ(e.executed(), 200u * 16u);
  EXPECT_LE(peak_slots, 16u);
}

TEST(Engine, CancelledSlotsAreReclaimedOncePopped) {
  Engine e;
  for (int i = 0; i < 100; ++i) {
    const EventHandle h = e.schedule_after(Time::ns(static_cast<double>(i + 1)), [] {});
    EXPECT_TRUE(e.cancel(h));
  }
  EXPECT_EQ(e.pending(), 0u);
  e.run();  // pops the cancelled husks, freeing their slots
  EXPECT_EQ(e.executed(), 0u);
  // The next wave reuses those slots instead of growing the pool.
  const std::size_t slots_after_cancel_wave = e.pool_slots();
  for (int i = 0; i < 100; ++i) {
    e.schedule_after(Time::ns(static_cast<double>(i + 1)), [] {});
  }
  EXPECT_EQ(e.pool_slots(), slots_after_cancel_wave);
  EXPECT_EQ(e.run(), 100u);
}

TEST(Engine, StaleHandleCannotCancelARecycledSlot) {
  Engine e;
  bool second_ran = false;
  const EventHandle first = e.schedule_at(1_ns, [] {});
  e.run();  // first's slot is now free
  e.schedule_at(2_ns, [&] { second_ran = true; });  // likely reuses the slot
  EXPECT_FALSE(e.cancel(first));  // stale handle must not hit the new event
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_TRUE(second_ran);
}

TEST(Engine, StaleHandleStaysDeadAcrossManyRecyclesOfItsSlot) {
  // cancel() is O(1): the handle carries its slot, and only the slot's live
  // seq can match. Recycle one slot many times (cancelled handle included)
  // and check every dead handle stays dead while the live one works.
  Engine e;
  EventHandle cancelled = e.schedule_at(1_ns, [] {});
  ASSERT_TRUE(e.cancel(cancelled));
  EXPECT_FALSE(e.cancel(cancelled));  // double-cancel fails
  e.run();                            // pops the husk, frees its slot

  std::vector<EventHandle> dead;
  dead.push_back(cancelled);
  for (int round = 0; round < 10; ++round) {
    // Single free slot -> each schedule reuses it with a fresh seq.
    const EventHandle h = e.schedule_at(Time::ns(10.0 + round), [] {});
    EXPECT_EQ(e.pool_slots(), 1u);
    for (const EventHandle& d : dead) EXPECT_FALSE(e.cancel(d));
    if (round % 2 == 0) {
      EXPECT_TRUE(e.cancel(h));  // the live occupant is still cancellable
      e.run();
    } else {
      e.run();
      EXPECT_FALSE(e.cancel(h));  // already executed
    }
    dead.push_back(h);
  }
  EXPECT_FALSE(e.cancel(EventHandle{}));  // invalid handle
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  Time last = Time::zero();
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    const Time at = Time::ps((i * 7919) % 100000);
    e.schedule_at(at, [&, at] {
      if (at < last) monotone = false;
      last = at;
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.executed(), 5000u);
}

}  // namespace
}  // namespace hhpim::sim
