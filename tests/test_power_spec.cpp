#include "energy/power_spec.hpp"

#include <gtest/gtest.h>

namespace hhpim::energy {
namespace {

TEST(PowerSpec, TableIIILatencies) {
  const PowerSpec s = PowerSpec::paper_45nm();
  EXPECT_EQ(s.hp.mram_timing.read, Time::ns(2.62));
  EXPECT_EQ(s.hp.mram_timing.write, Time::ns(11.81));
  EXPECT_EQ(s.hp.sram_timing.read, Time::ns(1.12));
  EXPECT_EQ(s.hp.sram_timing.write, Time::ns(1.12));
  EXPECT_EQ(s.hp.pe.mac_latency, Time::ns(5.52));
  EXPECT_EQ(s.lp.mram_timing.read, Time::ns(2.96));
  EXPECT_EQ(s.lp.mram_timing.write, Time::ns(14.65));
  EXPECT_EQ(s.lp.sram_timing.read, Time::ns(1.41));
  EXPECT_EQ(s.lp.pe.mac_latency, Time::ns(10.68));
  EXPECT_DOUBLE_EQ(s.hp.vdd, 1.2);
  EXPECT_DOUBLE_EQ(s.lp.vdd, 0.8);
}

TEST(PowerSpec, TableVPowers) {
  const PowerSpec s = PowerSpec::paper_45nm();
  EXPECT_DOUBLE_EQ(s.hp.mram_power.dyn_read.as_mw(), 428.48);
  EXPECT_DOUBLE_EQ(s.hp.mram_power.dyn_write.as_mw(), 133.78);
  EXPECT_DOUBLE_EQ(s.hp.mram_power.leakage.as_mw(), 2.98);
  EXPECT_DOUBLE_EQ(s.hp.sram_power.dyn_read.as_mw(), 508.93);
  EXPECT_DOUBLE_EQ(s.hp.sram_power.dyn_write.as_mw(), 500.0);
  EXPECT_DOUBLE_EQ(s.hp.sram_power.leakage.as_mw(), 23.29);
  EXPECT_DOUBLE_EQ(s.lp.mram_power.dyn_read.as_mw(), 179.05);
  EXPECT_DOUBLE_EQ(s.lp.mram_power.leakage.as_mw(), 0.84);
  EXPECT_DOUBLE_EQ(s.lp.sram_power.leakage.as_mw(), 5.45);
  EXPECT_DOUBLE_EQ(s.hp.pe.dynamic.as_mw(), 0.90);
  EXPECT_DOUBLE_EQ(s.lp.pe.leakage.as_mw(), 0.25);
}

TEST(PowerSpec, AccessEnergiesMatchHandComputation) {
  const PowerSpec s = PowerSpec::paper_45nm();
  // HP-MRAM read: 428.48 mW * 2.62 ns.
  EXPECT_NEAR(s.hp.read_energy(MemoryKind::kMram).as_pj(), 1122.6, 0.1);
  // HP-SRAM read: 508.93 mW * 1.12 ns.
  EXPECT_NEAR(s.hp.read_energy(MemoryKind::kSram).as_pj(), 570.0, 0.1);
  // LP-SRAM write: 177.30 mW * 1.41 ns.
  EXPECT_NEAR(s.lp.write_energy(MemoryKind::kSram).as_pj(), 250.0, 0.1);
  // HP PE MAC: 0.90 mW * 5.52 ns.
  EXPECT_NEAR(s.hp.pe.mac_energy().as_pj(), 4.968, 0.001);
}

TEST(PowerSpec, MemoryOrderingsFromThePaper) {
  const PowerSpec s = PowerSpec::paper_45nm();
  // SRAM is faster than MRAM; MRAM writes are the slowest operation.
  EXPECT_LT(s.hp.sram_timing.read, s.hp.mram_timing.read);
  EXPECT_LT(s.hp.mram_timing.read, s.hp.mram_timing.write);
  // LP is slower but leaks far less.
  EXPECT_GT(s.lp.pe.mac_latency, s.hp.pe.mac_latency);
  EXPECT_LT(s.lp.sram_power.leakage, s.hp.sram_power.leakage);
  // MRAM leaks an order of magnitude less than SRAM (the non-volatility win).
  EXPECT_LT(s.hp.mram_power.leakage.as_mw() * 5, s.hp.sram_power.leakage.as_mw());
}

TEST(PowerSpecScaled, StretchesTimeKeepsAccessEnergy) {
  const PowerSpec base = PowerSpec::paper_45nm();
  const PowerSpec s = base.scaled(4.0);
  EXPECT_EQ(s.hp.sram_timing.read, Time::ns(4.48));
  EXPECT_EQ(s.hp.pe.mac_latency, Time::ns(22.08));
  // Per-access dynamic energy is invariant under the time-base stretch.
  for (const MemoryKind m : {MemoryKind::kMram, MemoryKind::kSram}) {
    EXPECT_NEAR(s.hp.read_energy(m).as_pj(), base.hp.read_energy(m).as_pj(), 1e-6);
    EXPECT_NEAR(s.lp.write_energy(m).as_pj(), base.lp.write_energy(m).as_pj(), 1e-6);
  }
  EXPECT_NEAR(s.hp.pe.mac_energy().as_pj(), base.hp.pe.mac_energy().as_pj(), 1e-9);
  // Leakage power is genuinely per-wall-time: unchanged.
  EXPECT_EQ(s.hp.sram_power.leakage, base.hp.sram_power.leakage);
  EXPECT_EQ(s.lp.mram_power.leakage, base.lp.mram_power.leakage);
}

TEST(PowerSpec, ModuleAccessorSelectsCluster) {
  const PowerSpec s = PowerSpec::paper_45nm();
  EXPECT_DOUBLE_EQ(s.module(ClusterKind::kHighPerformance).vdd, 1.2);
  EXPECT_DOUBLE_EQ(s.module(ClusterKind::kLowPower).vdd, 0.8);
  EXPECT_STREQ(to_string(ClusterKind::kHighPerformance), "HP");
  EXPECT_STREQ(to_string(MemoryKind::kMram), "MRAM");
}

}  // namespace
}  // namespace hhpim::energy
