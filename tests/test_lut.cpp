#include "placement/lut.hpp"

#include <gtest/gtest.h>

#include "nn/model.hpp"
#include "placement/brute_force.hpp"

namespace hhpim::placement {
namespace {

using energy::PowerSpec;

class LutTest : public ::testing::Test {
 protected:
  static CostModel paper_model(double uses = 29.0) {
    return CostModel::build(PowerSpec::paper_45nm(),
                            ClusterShape{4, 64 * 1024, 64 * 1024},
                            ClusterShape{4, 64 * 1024, 64 * 1024}, uses);
  }

  static AllocationLut small_lut(const CostModel& m, std::uint64_t weights,
                                 Time slice, int entries = 32, int blocks = 32) {
    LutParams p;
    p.slice = slice;
    p.total_weights = weights;
    p.t_entries = entries;
    p.k_blocks = blocks;
    return AllocationLut::build(m, p);
  }
};

TEST_F(LutTest, EntriesCoverTheSliceUniformly) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 10000, Time::ms(10.0));
  ASSERT_EQ(lut.entries().size(), 32u);
  EXPECT_EQ(lut.entries().front().t_constraint, Time::ms(10.0) / 32);
  EXPECT_EQ(lut.entries().back().t_constraint, Time::ms(10.0));
}

TEST_F(LutTest, FeasibleEntriesSumToTotalWeights) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 10000, Time::ms(10.0));
  int feasible = 0;
  for (const auto& e : lut.entries()) {
    if (!e.feasible) continue;
    ++feasible;
    EXPECT_EQ(e.alloc.total(), 10000u);
    EXPECT_TRUE(fits(m, e.alloc));
  }
  EXPECT_GT(feasible, 10);
}

TEST_F(LutTest, FeasibleAllocationsMeetTheirConstraint) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 10000, Time::ms(10.0));
  for (const auto& e : lut.entries()) {
    if (!e.feasible) continue;
    EXPECT_LE(task_time(m, e.alloc).as_ns(), e.t_constraint.as_ns() * 1.0001)
        << "tc=" << e.t_constraint.to_string();
  }
}

TEST_F(LutTest, FeasibilityIsMonotoneInTc) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 10000, Time::ms(10.0));
  bool seen_feasible = false;
  for (const auto& e : lut.entries()) {
    if (e.feasible) seen_feasible = true;
    if (seen_feasible) EXPECT_TRUE(e.feasible);
  }
  EXPECT_TRUE(seen_feasible);
}

TEST_F(LutTest, EnergyDecreasesAsConstraintRelaxes) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 50000, Time::ms(40.0));
  const auto& entries = lut.entries();
  const LutEntry* first = nullptr;
  const LutEntry* last = nullptr;
  for (const auto& e : entries) {
    if (e.feasible && first == nullptr) first = &e;
    if (e.feasible) last = &e;
  }
  ASSERT_NE(first, nullptr);
  ASSERT_NE(last, nullptr);
  // The relaxed endpoint is strictly cheaper than the peak (the Fig. 6
  // downward slope), counting retention over each entry's own window.
  EXPECT_LT(last->predicted_task_energy.as_pj(), first->predicted_task_energy.as_pj());
}

TEST_F(LutTest, LookupFloorsAndClamps) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 10000, Time::ms(3.2));
  const Time step = Time::ms(0.1);
  const auto& e = lut.lookup(step * 5 + Time::us(1.0));
  EXPECT_EQ(e.t_constraint, step * 5);
  // Exactly on a grid point returns that point.
  EXPECT_EQ(lut.lookup(step * 7).t_constraint, step * 7);
  // Clamp below and above.
  EXPECT_EQ(lut.lookup(Time::ps(1)).t_constraint, step);
  EXPECT_EQ(lut.lookup(Time::ms(99)).t_constraint, Time::ms(3.2));
}

TEST_F(LutTest, PeakBoundaryExists) {
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 50000, Time::ms(40.0));
  const Time peak = lut.peak_t_constraint();
  EXPECT_GT(peak, Time::zero());
  EXPECT_LT(peak, Time::ms(40.0));
  // Left of the boundary: infeasible (the paper's grey region).
  EXPECT_FALSE(lut.lookup(peak - Time::ms(40.0) / 32).feasible);
}

TEST_F(LutTest, MatchesBruteForceOnCoarseGrid) {
  // Make blocks == brute-force granularity so both optimize the same
  // discretized problem.
  const CostModel m = paper_model(10.0);
  const std::uint64_t K = 1200;
  const Time slice = Time::us(400.0);
  LutParams p;
  p.slice = slice;
  p.total_weights = K;
  p.t_entries = 16;
  p.k_blocks = 12;  // blocks of 100 weights
  const auto lut = AllocationLut::build(m, p);

  for (const auto& e : lut.entries()) {
    const auto bf = brute_force_placement(m, K, e.t_constraint, 100);
    EXPECT_EQ(e.feasible, bf.feasible) << e.t_constraint.to_string();
    if (e.feasible && bf.feasible) {
      // DP quantizes time upward, so it may be slightly conservative, but
      // never better than brute force and within one block of it.
      const double dp = task_energy(m, e.alloc, e.t_constraint).as_pj();
      const double ref = bf.energy.as_pj();
      EXPECT_GE(dp, ref - 1.0) << e.t_constraint.to_string();
      const double block_margin =
          m.at(Space::kHpMram).dyn_per_weight.as_pj() * 100 * 2;
      EXPECT_LE(dp, ref + block_margin) << e.t_constraint.to_string();
    }
  }
}

TEST_F(LutTest, WhollyInfeasibleTableClampsGracefully) {
  // A slice so short that even the peak placement misses every entry: the
  // paper's grey region covers the whole table. lookup() still floors,
  // lookup_or_peak() reports the miss, peak_t_constraint() saturates.
  const CostModel m = paper_model();
  const auto lut = small_lut(m, 500000, Time::us(1.0));
  for (const auto& e : lut.entries()) {
    EXPECT_FALSE(e.feasible);
    EXPECT_EQ(e.alloc.total(), 0u);
  }
  EXPECT_EQ(lut.lookup_or_peak(Time::us(0.5)), nullptr);
  EXPECT_EQ(lut.peak_t_constraint(), Time::max());
  EXPECT_FALSE(lut.lookup(Time::us(0.9)).feasible);
}

TEST_F(LutTest, ZeroCapacityEverywhereIsInfeasible) {
  // Shapes with no storage at all: every entry infeasible, no crash.
  const CostModel m = CostModel::build(PowerSpec::paper_45nm(), ClusterShape{4, 0, 0},
                                       ClusterShape{4, 0, 0}, 10.0);
  const auto lut = small_lut(m, 1000, Time::ms(1.0), 8, 8);
  for (const auto& e : lut.entries()) EXPECT_FALSE(e.feasible);
  EXPECT_EQ(lut.lookup_or_peak(Time::ms(1.0)), nullptr);
}

TEST_F(LutTest, SingleLayerModelBuildsAndAllocatesExactly) {
  // A one-linear-layer model: weights far below one default block, so the
  // LUT must cope with k_blocks greatly exceeding the weight count.
  nn::Model tiny{"tiny", 1.0};
  tiny.input({16, 1, 1});
  tiny.linear("fc", 8);  // 128 weights
  ASSERT_EQ(tiny.structural_params(), 128u);
  const CostModel m = paper_model(tiny.uses_per_weight());
  const auto lut = small_lut(m, tiny.effective_params(), Time::ms(5.0), 16, 64);
  bool any_feasible = false;
  for (const auto& e : lut.entries()) {
    if (!e.feasible) continue;
    any_feasible = true;
    EXPECT_EQ(e.alloc.total(), 128u);
    EXPECT_TRUE(fits(m, e.alloc));
  }
  EXPECT_TRUE(any_feasible);
}

TEST_F(LutTest, BadParamsThrow) {
  const CostModel m = paper_model();
  LutParams p;
  p.slice = Time::zero();
  p.total_weights = 10;
  EXPECT_THROW(AllocationLut::build(m, p), std::invalid_argument);
  p.slice = Time::ms(1.0);
  p.total_weights = 0;
  EXPECT_THROW(AllocationLut::build(m, p), std::invalid_argument);
}

TEST(PickResolution, RespectsBudget) {
  // 1 % of a 100 ms slice at 1000 cells/us -> 1000 us budget -> 1e6 cells.
  const auto r = pick_resolution(Time::ms(100.0), 0.01, 1000.0);
  EXPECT_GE(r.t_entries, 8);
  EXPECT_LE(r.estimated_us, 1000.0);
  // Double the budget, never a smaller resolution.
  const auto r2 = pick_resolution(Time::ms(200.0), 0.01, 1000.0);
  EXPECT_GE(r2.t_entries, r.t_entries);
}

TEST(PickResolution, CapsAtMaxResolution) {
  const auto r = pick_resolution(Time::s(100.0), 0.5, 1e9, 256);
  EXPECT_LE(r.t_entries, 256);
}

}  // namespace
}  // namespace hhpim::placement
