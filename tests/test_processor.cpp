#include "hhpim/processor.hpp"

#include <gtest/gtest.h>

#include "hhpim/metrics.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

namespace hhpim::sys {
namespace {

using placement::Space;

SystemConfig test_config(ArchConfig arch) {
  SystemConfig c;
  c.arch = arch;
  c.lut_t_entries = 48;  // keep LUT construction fast in tests
  c.lut_k_blocks = 48;
  return c;
}

class ProcessorTest : public ::testing::Test {
 protected:
  nn::Model model = nn::zoo::efficientnet_b0();
};

TEST_F(ProcessorTest, SliceLengthDerivedFromPeak) {
  Processor p{test_config(ArchConfig::hhpim()), model};
  // T = 10 * peak + 1 % margin.
  EXPECT_NEAR(p.slice_length().as_ms(), p.peak_task_time().as_ms() * 10.1, 0.01);
  EXPECT_GT(p.mram_only_task_time(), p.peak_task_time());
}

TEST_F(ProcessorTest, InventoryMatchesTableI) {
  Processor p{test_config(ArchConfig::hhpim()), model};
  const Inventory inv = p.inventory();
  EXPECT_EQ(inv.hp_modules, 4u);
  EXPECT_EQ(inv.lp_modules, 4u);
  EXPECT_EQ(inv.mram_banks, 8u);
  EXPECT_EQ(inv.sram_banks, 8u);
  EXPECT_EQ(inv.pes, 8u);
  EXPECT_EQ(inv.controllers, 2u);
  EXPECT_EQ(inv.mram_bytes, 8u * 64 * 1024);

  Processor base{test_config(ArchConfig::baseline()), model};
  const Inventory binv = base.inventory();
  EXPECT_EQ(binv.hp_modules, 8u);
  EXPECT_EQ(binv.mram_banks, 0u);
  EXPECT_EQ(binv.controllers, 1u);
  EXPECT_EQ(binv.sram_bytes, 8u * 128 * 1024);
}

TEST_F(ProcessorTest, InitialResidencyMatchesPolicy) {
  Processor p{test_config(ArchConfig::hybrid()), model};
  EXPECT_EQ(p.current_allocation()[Space::kHpMram], model.effective_params());
  EXPECT_EQ(p.current_allocation()[Space::kHpSram], 0u);

  Processor h{test_config(ArchConfig::hhpim()), model};
  EXPECT_EQ(h.current_allocation().total(), model.effective_params());
  ASSERT_NE(h.lut(), nullptr);
  EXPECT_EQ(p.lut(), nullptr);
}

TEST_F(ProcessorTest, IdleSliceConsumesAlmostNothingOnHhpim) {
  Processor p{test_config(ArchConfig::hhpim()), model};
  const auto s = p.run_slice(0);
  // Parked in MRAM + everything gated: tiny or zero energy.
  EXPECT_LT(s.energy.as_uj(), 50.0);
  EXPECT_EQ(s.tasks_executed, 0);
}

TEST_F(ProcessorTest, IdleSliceStillLeaksOnBaseline) {
  Processor p{test_config(ArchConfig::baseline()), model};
  const auto s = p.run_slice(0);
  // SRAM retention for the whole slice: 95 k weights spread over 8 modules ->
  // 11875 B each -> one 16 kB sub-array powered out of the 128 kB macro
  // (46.58 mW full-macro leakage).
  const double per_module_mw = 46.58 * (16384.0 / 131072.0);
  const double expected_mj = 8 * per_module_mw * 1e-3 * p.slice_length().as_s() * 1e3;
  EXPECT_NEAR(s.energy.as_mj(), expected_mj, expected_mj * 0.05);
}

TEST_F(ProcessorTest, BusyTimeScalesWithLoad) {
  // Fixed placement (Hybrid-PIM) so per-task time is constant across slices.
  Processor p{test_config(ArchConfig::hybrid()), model};
  const auto s2 = p.run_slice(2);
  const auto s4 = p.run_slice(4);
  EXPECT_NEAR(s4.busy_time.as_ms() / s2.busy_time.as_ms(), 2.0, 0.05);
  EXPECT_FALSE(s2.deadline_violated);
  EXPECT_FALSE(s4.deadline_violated);
}

TEST_F(ProcessorTest, PeakLoadMeetsDeadline) {
  Processor p{test_config(ArchConfig::hhpim()), model};
  for (int i = 0; i < 3; ++i) {
    const auto s = p.run_slice(10);
    EXPECT_FALSE(s.deadline_violated) << "slice " << i;
  }
}

TEST_F(ProcessorTest, EnergyLedgerBalancesSliceStats) {
  Processor p{test_config(ArchConfig::hhpim()), model};
  Energy sum = Energy::zero();
  for (const int n : {0, 3, 10, 1}) sum += p.run_slice(n).energy;
  EXPECT_NEAR(p.ledger().total().as_pj(), sum.as_pj(), 1.0);
}

TEST_F(ProcessorTest, PlannerPredictionTracksMeasurement) {
  // The LUT's predicted task energy and the DES measurement agree within
  // modeling tolerance (movement, controller overheads, PE leakage are on
  // top of the planner's estimate).
  Processor p{test_config(ArchConfig::hhpim()), model};
  p.run_slice(4);  // transition
  const auto s = p.run_slice(4);
  ASSERT_NE(p.lut(), nullptr);
  const auto& entry = p.lut()->lookup(p.slice_length() / 4);
  ASSERT_TRUE(entry.feasible);
  const double predicted_slice = entry.predicted_task_energy.as_mj() * 4;
  EXPECT_NEAR(s.energy.as_mj(), predicted_slice, predicted_slice * 0.30);
}

TEST_F(ProcessorTest, RunScenarioExecutesAllTasks) {
  Processor p{test_config(ArchConfig::hhpim()), model};
  const std::vector<int> loads{2, 5, 0, 10, 1};
  const RunStats run = p.run_scenario(loads);
  EXPECT_EQ(run.tasks, 18u);
  EXPECT_EQ(run.slices.size(), loads.size() + 1);  // +1 drain slice
  EXPECT_EQ(run.deadline_violations, 0u);
  EXPECT_GT(run.total_energy.as_pj(), 0.0);
  EXPECT_GT(run.mean_slice_energy().as_pj(), 0.0);
}

TEST_F(ProcessorTest, AllArchitecturesRunAllModels) {
  for (const auto& arch : ArchConfig::paper_table1()) {
    for (const auto& m : nn::zoo::paper_models()) {
      SystemConfig c = test_config(arch);
      Processor p{c, m};
      const auto s = p.run_slice(2);
      EXPECT_GT(s.energy.as_pj(), 0.0) << arch.name << " / " << m.name();
    }
  }
}

TEST_F(ProcessorTest, EnergySavingMetric) {
  EXPECT_DOUBLE_EQ(energy_saving_percent(Energy::mj(1.0), Energy::mj(4.0)), 75.0);
  EXPECT_DOUBLE_EQ(energy_saving_percent(Energy::mj(4.0), Energy::mj(4.0)), 0.0);
  EXPECT_DOUBLE_EQ(energy_saving_percent(Energy::mj(1.0), Energy::zero()), 0.0);
}

TEST_F(ProcessorTest, RunCellIsRepeatable) {
  const auto loads = workload::generate(workload::Scenario::kPulsing,
                                        workload::ScenarioConfig{.slices = 6});
  const SystemConfig c = test_config(ArchConfig::hhpim());
  const auto a = run_cell(c, model, loads);
  const auto b = run_cell(c, model, loads);
  EXPECT_DOUBLE_EQ(a.energy.as_pj(), b.energy.as_pj());  // fully deterministic
}

}  // namespace
}  // namespace hhpim::sys
