#include "pim/module.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hhpim::pim {
namespace {

using energy::Activity;
using energy::ClusterKind;
using energy::EnergyLedger;
using energy::MemoryKind;
using energy::PowerSpec;

class PimModuleTest : public ::testing::Test {
 protected:
  PimModule make_module(ClusterKind kind, std::size_t mram = 64 * 1024,
                        std::size_t sram = 64 * 1024) {
    ModuleConfig c;
    c.name = "m";
    c.cluster = kind;
    c.mram_bytes = mram;
    c.sram_bytes = sram;
    return PimModule{c, spec, &ledger};
  }

  PowerSpec spec = PowerSpec::paper_45nm();
  EnergyLedger ledger;
};

TEST_F(PimModuleTest, ComputeBurstDurationIsReadPlusPePerMac) {
  auto m = make_module(ClusterKind::kHighPerformance);
  const auto r = m.compute_burst(Time::zero(), MemoryKind::kSram, 100);
  // 100 * (1.12 + 5.52) ns.
  EXPECT_EQ(r.complete - r.start, Time::ns(664.0));
  const auto r2 = m.compute_burst(Time::zero(), MemoryKind::kMram, 10);
  // Serialized behind the first burst; 10 * (2.62 + 5.52).
  EXPECT_EQ(r2.start, r.complete);
  EXPECT_EQ(r2.complete - r2.start, Time::ns(81.4));
}

TEST_F(PimModuleTest, MacLatencyMatchesTableIII) {
  auto hp = make_module(ClusterKind::kHighPerformance);
  auto lp = make_module(ClusterKind::kLowPower);
  EXPECT_EQ(hp.mac_latency(MemoryKind::kSram), Time::ns(6.64));
  EXPECT_EQ(hp.mac_latency(MemoryKind::kMram), Time::ns(8.14));
  EXPECT_EQ(lp.mac_latency(MemoryKind::kSram), Time::ns(12.09));
  EXPECT_EQ(lp.mac_latency(MemoryKind::kMram), Time::ns(13.64));
}

TEST_F(PimModuleTest, BurstEnergyMatchesHandComputation) {
  auto m = make_module(ClusterKind::kLowPower);
  m.compute_burst(Time::zero(), MemoryKind::kMram, 1000);
  // Reads: 1000 * 179.05 mW * 2.96 ns; MACs: 1000 * 0.51 mW * 10.68 ns.
  EXPECT_NEAR(ledger.total(Activity::kMemRead).as_pj(), 1000 * 529.988, 1.0);
  EXPECT_NEAR(ledger.total(Activity::kCompute).as_pj(), 1000 * 5.4468, 0.1);
}

TEST_F(PimModuleTest, MramGatedOutsideBursts) {
  auto m = make_module(ClusterKind::kHighPerformance);
  m.compute_burst(Time::zero(), MemoryKind::kMram, 10);
  const Time end = m.busy_until();
  m.settle(Time::ms(1.0));
  // MRAM leaked only during the burst window, not for the full millisecond.
  const Energy mram_leak = Power::mw(2.98) * end;
  EXPECT_NEAR(ledger.component_total_by_index(0, Activity::kLeakage).as_pj(),
              mram_leak.as_pj(), 1.0);
}

TEST_F(PimModuleTest, SramLeaksWhileHoldingWeights) {
  auto m = make_module(ClusterKind::kHighPerformance);
  m.set_resident(MemoryKind::kSram, 1000, Time::zero());
  m.set_resident(MemoryKind::kSram, 0, Time::us(1.0));
  m.settle(Time::us(2.0));
  // 1000 weights -> one 16 kB sub-array of the 64 kB macro powered for 1 us:
  // 23.29 mW * 16/64.
  EXPECT_NEAR(ledger.total(Activity::kLeakage).as_pj(), 23.29 * 1000.0 / 4.0, 1.0);
}

TEST_F(PimModuleTest, ResidencyRespectsCapacity) {
  auto m = make_module(ClusterKind::kHighPerformance);
  EXPECT_NO_THROW(m.set_resident(MemoryKind::kSram, 64 * 1024, Time::zero()));
  EXPECT_THROW(m.set_resident(MemoryKind::kSram, 64 * 1024 + 1, Time::zero()),
               std::invalid_argument);
  EXPECT_EQ(m.resident(MemoryKind::kSram), 64u * 1024);
}

TEST_F(PimModuleTest, NoMramModuleRejectsMramOps) {
  auto m = make_module(ClusterKind::kHighPerformance, /*mram=*/0);
  EXPECT_FALSE(m.has_mram());
  EXPECT_EQ(m.weight_capacity(MemoryKind::kMram), 0u);
  EXPECT_THROW(m.compute_burst(Time::zero(), MemoryKind::kMram, 1), std::logic_error);
  EXPECT_THROW(m.set_resident(MemoryKind::kMram, 1, Time::zero()), std::invalid_argument);
}

TEST_F(PimModuleTest, StreamTimingsUseReadAndWriteLatencies) {
  auto m = make_module(ClusterKind::kHighPerformance);
  const auto out = m.stream_out(Time::zero(), MemoryKind::kMram, 100);
  EXPECT_EQ(out.complete - out.start, Time::ns(262.0));
  const auto in = m.stream_in(Time::zero(), MemoryKind::kMram, 100);
  EXPECT_EQ(in.complete - in.start, Time::ns(1181.0));  // writes are slow
}

TEST_F(PimModuleTest, IntraMovePipelinesReadAndWrite) {
  auto m = make_module(ClusterKind::kHighPerformance);
  const auto r = m.intra_move(Time::zero(), MemoryKind::kMram, MemoryKind::kSram, 100);
  // Read 2.62/w, write 1.12/w: write-side hidden under reads; one write lead-out.
  const Time expected = Time::ns(262.0) + Time::ns(1.12);
  EXPECT_EQ(r.complete - r.start, expected);
  EXPECT_THROW(m.intra_move(Time::zero(), MemoryKind::kSram, MemoryKind::kSram, 1),
               std::invalid_argument);
}

TEST_F(PimModuleTest, FunctionalDotMatchesBurstTiming) {
  auto m = make_module(ClusterKind::kHighPerformance);
  // Preload weights functionally.
  const std::vector<std::int8_t> weights{3, -2, 7, 1, -5, 4, 0, 9};
  auto& sram = m.bank(MemoryKind::kSram);
  sram.power_on(Time::zero());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sram.poke(i, static_cast<std::uint8_t>(weights[i]));
  }
  const std::vector<std::int8_t> acts{1, 2, 3, 4, 5, 6, 7, 8};

  BurstResult timing;
  const std::int32_t acc =
      m.compute_dot(Time::zero(), MemoryKind::kSram, 0, acts.data(), acts.size(), &timing);

  std::int32_t expected = 0;
  for (std::size_t i = 0; i < acts.size(); ++i) expected += weights[i] * acts[i];
  EXPECT_EQ(acc, expected);

  // Op-level LOAD->EXECUTE serialization must equal the burst model exactly.
  auto m2 = make_module(ClusterKind::kHighPerformance);
  const auto burst = m2.compute_burst(Time::zero(), MemoryKind::kSram, acts.size());
  EXPECT_EQ(timing.complete - timing.start, burst.complete - burst.start);
}

TEST_F(PimModuleTest, CapacityInWeights) {
  auto m = make_module(ClusterKind::kHighPerformance, 32 * 1024, 16 * 1024);
  EXPECT_EQ(m.weight_capacity(MemoryKind::kMram), 32u * 1024);  // int8 = 1 byte
  EXPECT_EQ(m.weight_capacity(MemoryKind::kSram), 16u * 1024);
}

}  // namespace
}  // namespace hhpim::pim
