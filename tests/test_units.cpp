#include "common/units.hpp"

#include <gtest/gtest.h>

namespace hhpim {
namespace {

using namespace hhpim::literals;

TEST(Time, ConstructionAndConversion) {
  EXPECT_EQ(Time::ns(1.0).as_ps(), 1000);
  EXPECT_EQ(Time::us(1.0).as_ps(), 1'000'000);
  EXPECT_EQ(Time::ms(1.0).as_ps(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Time::ps(2500).as_ns(), 2.5);
  EXPECT_DOUBLE_EQ(Time::ms(3.0).as_s(), 0.003);
}

TEST(Time, TableIIILatenciesAreExactInPicoseconds) {
  // Every latency in the paper's Table III is a multiple of 10 ps, so the
  // integer representation is exact.
  EXPECT_EQ(Time::ns(2.62).as_ps(), 2620);
  EXPECT_EQ(Time::ns(11.81).as_ps(), 11810);
  EXPECT_EQ(Time::ns(1.12).as_ps(), 1120);
  EXPECT_EQ(Time::ns(5.52).as_ps(), 5520);
  EXPECT_EQ(Time::ns(14.65).as_ps(), 14650);
  EXPECT_EQ(Time::ns(10.68).as_ps(), 10680);
}

TEST(Time, Arithmetic) {
  const Time a = 10_ns;
  const Time b = Time::ns(2.5);
  EXPECT_EQ((a + b).as_ps(), 12500);
  EXPECT_EQ((a - b).as_ps(), 7500);
  EXPECT_EQ((a * 3).as_ps(), 30000);
  EXPECT_EQ((3 * a).as_ps(), 30000);
  EXPECT_EQ((a / 4).as_ps(), 2500);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_EQ((a * 0.5).as_ps(), 5000);
}

TEST(Time, Comparison) {
  EXPECT_LT(1_ns, 2_ns);
  EXPECT_EQ(Time::zero(), 0_ps);
  EXPECT_GT(Time::max(), Time::ms(1e6));
}

TEST(Energy, Arithmetic) {
  Energy e = Energy::nj(1.0);
  EXPECT_DOUBLE_EQ(e.as_pj(), 1000.0);
  e += Energy::pj(500);
  EXPECT_DOUBLE_EQ(e.as_nj(), 1.5);
  EXPECT_DOUBLE_EQ((e * 2.0).as_nj(), 3.0);
  EXPECT_DOUBLE_EQ((e / 3.0).as_pj(), 500.0);
  EXPECT_DOUBLE_EQ(Energy::mj(1.0).as_uj(), 1000.0);
}

TEST(PowerTimesTime, IsExactlyPicojoules) {
  // 1 mW * 1 ns = 1 pJ: the core accounting identity.
  EXPECT_DOUBLE_EQ((Power::mw(1.0) * Time::ns(1.0)).as_pj(), 1.0);
  // Table V spot check: HP-MRAM read burns 428.48 mW for 2.62 ns.
  const Energy read = Power::mw(428.48) * Time::ns(2.62);
  EXPECT_NEAR(read.as_pj(), 1122.6, 0.1);
}

TEST(EnergyOverTime, YieldsAveragePower) {
  const Power p = Energy::pj(2000) / Time::ns(4.0);
  EXPECT_DOUBLE_EQ(p.as_mw(), 500.0);
  EXPECT_DOUBLE_EQ((Energy::pj(1) / Time::zero()).as_mw(), 0.0);
}

TEST(Frequency, PeriodConversion) {
  EXPECT_EQ(Frequency::mhz(50.0).period().as_ps(), 20000);
  EXPECT_EQ(Frequency::ghz(1.0).period().as_ps(), 1000);
}

TEST(Formatting, HumanReadable) {
  EXPECT_EQ(Time::ns(42.0).to_string(), "42.000 ns");
  EXPECT_EQ(Time::ms(1.5).to_string(), "1.500 ms");
  EXPECT_EQ(Energy::mj(1.234).to_string(), "1.234 mJ");
  EXPECT_EQ(Power::mw(23.29).to_string(), "23.290 mW");
}

}  // namespace
}  // namespace hhpim
