// Shape-level reproduction checks for the paper's headline claims.
//
// Absolute numbers differ from the paper (our substrate is a simulator, not
// the authors' FPGA + synthesis flow; see EXPERIMENTS.md), so these tests
// pin down the *qualitative* results: orderings, ratios, crossovers, and the
// Fig. 6 allocation sequence.
#include <gtest/gtest.h>

#include "hhpim/metrics.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "workload/scenario.hpp"

namespace hhpim::sys {
namespace {

using placement::Space;
using workload::Scenario;

SystemConfig cfg(ArchConfig arch, Time slice = Time::zero()) {
  SystemConfig c;
  c.arch = arch;
  c.slice = slice;
  c.lut_t_entries = 64;
  c.lut_k_blocks = 64;
  return c;
}

class PaperClaims : public ::testing::Test {
 protected:
  static const Processor& hhpim() {
    static Processor p{cfg(ArchConfig::hhpim()), nn::zoo::efficientnet_b0()};
    return p;
  }

  static ArchConfig arch_of(ArchKind kind) {
    switch (kind) {
      case ArchKind::kBaseline: return ArchConfig::baseline();
      case ArchKind::kHetero: return ArchConfig::hetero();
      case ArchKind::kHybrid: return ArchConfig::hybrid();
      case ArchKind::kHhpim: return ArchConfig::hhpim();
    }
    return ArchConfig::hhpim();
  }

  static Energy scenario_energy(ArchKind kind, Scenario scenario, int slices = 12) {
    const nn::Model model = nn::zoo::efficientnet_b0();
    const Time slice = hhpim().slice_length();
    workload::ScenarioConfig wc;
    wc.slices = slices;
    const auto loads = workload::generate(scenario, wc);
    return run_cell(cfg(arch_of(kind), slice), model, loads).energy;
  }

  /// Average power over a whole scenario run: total energy / total wall time.
  static double average_power_mw(ArchKind kind, Scenario scenario, int slices = 12) {
    const nn::Model model = nn::zoo::efficientnet_b0();
    const Time slice = hhpim().slice_length();
    workload::ScenarioConfig wc;
    wc.slices = slices;
    const auto loads = workload::generate(scenario, wc);
    Processor p{cfg(arch_of(kind), slice), model};
    const RunStats run = p.run_scenario(loads);
    return (run.total_energy / run.total_time).as_mw();
  }
};

TEST_F(PaperClaims, PeakSplitIsRoughlySixteenToNine) {
  // Fig. 6 (green point): at peak performance the network is stored across
  // HP-SRAM and LP-SRAM in a 16:9 ratio.
  const auto& alloc = hhpim().current_allocation();  // parked; use policy peak
  (void)alloc;
  const nn::Model model = nn::zoo::efficientnet_b0();
  Processor p{cfg(ArchConfig::hhpim()), model};
  const auto s = p.run_slice(10);  // peak demand
  const double hp = static_cast<double>(s.alloc[Space::kHpSram]);
  const double lp = static_cast<double>(s.alloc[Space::kLpSram]);
  ASSERT_GT(lp, 0.0);
  EXPECT_NEAR(hp / lp, 16.0 / 9.0, 0.20);
  // And no MRAM at peak: SRAM serves as weight storage (the HH-PIM ability
  // conventional H-PIM lacks).
  EXPECT_EQ(s.alloc[Space::kHpMram] + s.alloc[Space::kLpMram], 0u);
}

TEST_F(PaperClaims, MramOnlyPeakIsSlowerThanHybridPeak) {
  // Fig. 6 (purple vs green point): storing weights only in MRAM (as in
  // H-PIM) is slower than mixing in SRAM. Paper measures 1.43x; our LOAD
  // serialization model gives ~1.2x.
  const double ratio = hhpim().mram_only_task_time() / hhpim().peak_task_time();
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.6);
}

TEST_F(PaperClaims, Fig6AllocationSequence) {
  // As t_constraint relaxes, the optimizer walks from SRAM-heavy placements
  // to LP-MRAM-only (the Fig. 6 progression).
  const auto* lut = hhpim().lut();
  ASSERT_NE(lut, nullptr);
  const placement::LutEntry* peak = nullptr;
  for (const auto& e : lut->entries()) {
    if (e.feasible) {
      peak = &e;
      break;
    }
  }
  ASSERT_NE(peak, nullptr);
  const auto& relaxed = lut->entries().back();

  // Near peak: SRAM dominates.
  EXPECT_GT(peak->alloc[Space::kHpSram] + peak->alloc[Space::kLpSram],
            peak->alloc.total() / 2);
  // Fully relaxed: everything in LP-MRAM, the minimal-power memory.
  EXPECT_EQ(relaxed.alloc[Space::kLpMram], relaxed.alloc.total());
  // And the relaxed point is much cheaper than leaving the *unoptimized*
  // (peak) placement in place for the same relaxed constraint (paper:
  // 43.17 % E_task reduction; we require at least 25 %).
  const Energy unoptimized = placement::task_energy(
      hhpim().cost_model(), peak->alloc, relaxed.t_constraint);
  EXPECT_LT(relaxed.predicted_task_energy.as_pj(), unoptimized.as_pj() * 0.75);
}

TEST_F(PaperClaims, Fig6EnergyMonotoneDecline) {
  // E_task declines (quasi-linearly with plateaus) as t_constraint grows.
  const auto* lut = hhpim().lut();
  ASSERT_NE(lut, nullptr);
  double prev = -1.0;
  int increases = 0;
  int feasible = 0;
  for (const auto& e : lut->entries()) {
    if (!e.feasible) continue;
    ++feasible;
    const double v = e.predicted_task_energy.as_pj();
    if (prev >= 0.0 && v > prev * 1.02) ++increases;
    prev = v;
  }
  ASSERT_GT(feasible, 8);
  // Small quantization wiggles allowed, but no systematic increase.
  EXPECT_LE(increases, feasible / 8);
}

TEST_F(PaperClaims, SavingsOrderingInLowLoad) {
  // Case 1: HH-PIM saves the most vs Baseline, then Hetero, then Hybrid
  // (paper: 86.23 % / 78.7 % / 66.5 %).
  const Energy hh = scenario_energy(ArchKind::kHhpim, Scenario::kLowConstant);
  const Energy base = scenario_energy(ArchKind::kBaseline, Scenario::kLowConstant);
  const Energy het = scenario_energy(ArchKind::kHetero, Scenario::kLowConstant);
  const Energy hyb = scenario_energy(ArchKind::kHybrid, Scenario::kLowConstant);

  const double vs_base = energy_saving_percent(hh, base);
  const double vs_het = energy_saving_percent(hh, het);
  const double vs_hyb = energy_saving_percent(hh, hyb);

  EXPECT_GT(vs_base, 60.0);
  EXPECT_GT(vs_het, 50.0);
  EXPECT_GT(vs_hyb, 30.0);
  // The Baseline is the worst of the three comparison points, as in the
  // paper. (The Hetero/Hybrid secondary ordering flips in our model — our
  // MRAM per-access energy, the P*t product of Tables III and V, weighs
  // Hybrid's dynamic cost more than the paper's; see EXPERIMENTS.md.)
  EXPECT_GT(vs_base, vs_het);
  EXPECT_GT(vs_base, vs_hyb);
}

TEST_F(PaperClaims, HighLoadNearlyTiesHetero) {
  // Case 2: HH-PIM and Hetero-PIM both end up in HP-SRAM/LP-SRAM, so the
  // gap collapses (paper: 3.72 %). Savings vs Baseline stay substantial.
  const Energy hh = scenario_energy(ArchKind::kHhpim, Scenario::kHighConstant);
  const Energy het = scenario_energy(ArchKind::kHetero, Scenario::kHighConstant);
  const Energy base = scenario_energy(ArchKind::kBaseline, Scenario::kHighConstant);

  EXPECT_LT(std::abs(energy_saving_percent(hh, het)), 12.0);
  EXPECT_GT(energy_saving_percent(hh, base), 15.0);
}

TEST_F(PaperClaims, Case1BeatsCase2Savings) {
  // Adaptivity pays the most when load is low.
  const double low = energy_saving_percent(
      scenario_energy(ArchKind::kHhpim, Scenario::kLowConstant),
      scenario_energy(ArchKind::kBaseline, Scenario::kLowConstant));
  const double high = energy_saving_percent(
      scenario_energy(ArchKind::kHhpim, Scenario::kHighConstant),
      scenario_energy(ArchKind::kBaseline, Scenario::kHighConstant));
  EXPECT_GT(low, high);
}

TEST_F(PaperClaims, DynamicScenariosAllSave) {
  // Cases 3-6 (Table VI): HH-PIM saves energy vs every comparison
  // architecture in every dynamic scenario.
  for (const Scenario s : {Scenario::kPeriodicSpike, Scenario::kPulsing}) {
    const Energy hh = scenario_energy(ArchKind::kHhpim, s);
    EXPECT_GT(energy_saving_percent(hh, scenario_energy(ArchKind::kBaseline, s)), 10.0)
        << workload::case_name(s);
    EXPECT_GT(energy_saving_percent(hh, scenario_energy(ArchKind::kHetero, s)), 0.0)
        << workload::case_name(s);
    EXPECT_GT(energy_saving_percent(hh, scenario_energy(ArchKind::kHybrid, s)), 10.0)
        << workload::case_name(s);
  }
}

// Table VI reports HH-PIM *average power* savings against the homogeneous
// baselines (Baseline-PIM: all-HP modules with SRAM only; Hybrid-PIM: all-HP
// modules with MRAM+SRAM). Our simulator reproduces the direction, not the
// authors' absolute FPGA numbers, so the checked range is the paper's
// headline window (Case 1 vs Baseline: 86.23 %) widened by a named slack.
constexpr double kAvgPowerSavingsSlackPercent = 15.0;
constexpr double kPaperPeakSavingsPercent = 86.23;

TEST_F(PaperClaims, TableViAveragePowerSavingsInRange) {
  for (const Scenario s : {Scenario::kLowConstant, Scenario::kHighConstant,
                           Scenario::kPeriodicSpike, Scenario::kPulsing}) {
    const double hh = average_power_mw(ArchKind::kHhpim, s);
    for (const ArchKind ref_kind : {ArchKind::kBaseline, ArchKind::kHybrid}) {
      const double ref = average_power_mw(ref_kind, s);
      const double savings = (1.0 - hh / ref) * 100.0;
      // Direction: HH-PIM draws no more average power than the homogeneous
      // baseline — the savings are strictly positive...
      EXPECT_GT(savings, 0.0)
          << workload::case_name(s) << " vs " << to_string(ref_kind);
      // ...and bounded by the paper's best reported saving plus slack.
      EXPECT_LT(savings, kPaperPeakSavingsPercent + kAvgPowerSavingsSlackPercent)
          << workload::case_name(s) << " vs " << to_string(ref_kind);
    }
  }
}

TEST_F(PaperClaims, HhpimMeetsLatencyEverywhere) {
  // "while meeting application latency requirements": no deadline violations
  // across the six scenarios.
  const nn::Model model = nn::zoo::efficientnet_b0();
  for (const Scenario s : workload::all_scenarios()) {
    workload::ScenarioConfig wc;
    wc.slices = 8;
    const auto loads = workload::generate(s, wc);
    const auto cell = run_cell(cfg(ArchConfig::hhpim()), model, loads);
    EXPECT_EQ(cell.deadline_violations, 0u) << workload::case_name(s);
  }
}

}  // namespace
}  // namespace hhpim::sys
