// Device-level outcome memoization suite: the OutcomeCache key/value
// semantics (exact buckets, first-writer-wins, pointer stability across
// clear()), the processor state digest it keys on, and the subsystem's
// load-bearing property — fleet output with memoization on is byte-identical
// to the scalar Device::run path at any thread count, cold or warm, and
// exhausted devices always take the exact path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fleet/outcome_cache.hpp"
#include "fleet/simulator.hpp"
#include "hhpim/processor.hpp"
#include "nn/zoo.hpp"
#include "placement/lut_cache.hpp"

namespace hhpim::fleet {
namespace {

/// A small fleet that runs in milliseconds: one model, low LUT resolution.
FleetSpec small_fleet(int devices = 24, int slices = 6) {
  FleetSpec spec;
  spec.name = "memo-fleet";
  spec.devices = devices;
  spec.slices = slices;
  spec.models = {nn::zoo::efficientnet_b0()};
  spec.config.lut_t_entries = 16;
  spec.config.lut_k_blocks = 16;
  return spec;
}

FleetResult run_with(const FleetSpec& spec, unsigned threads,
                     placement::LutCache* luts, OutcomeCache* memo) {
  FleetOptions opts;
  opts.threads = threads;
  opts.shard_size = 4;
  opts.lut_cache = luts;
  opts.memoize_devices = memo != nullptr;
  opts.outcome_cache = memo;
  return FleetSimulator{opts}.run(spec);
}

// --- cache semantics ---------------------------------------------------------

TEST(OutcomeCache, LookupInsertStatsClear) {
  OutcomeCache cache;
  const SliceOutcomeKey key{7, 42, 3, 1};
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  std::vector<std::pair<SliceOutcomeKey, SliceOutcome>> batch;
  batch.push_back({key, SliceOutcome{100.0, 5, 2, 99, 0, true}});
  cache.insert_batch(batch);
  const SliceOutcome* hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->energy_pj, 100.0);
  EXPECT_EQ(hit->busy_ps, 5);
  EXPECT_EQ(hit->post_state, 99u);
  EXPECT_TRUE(hit->deadline_violated);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  // First writer wins: a conflicting re-insert neither replaces the value
  // nor counts as an insertion.
  batch[0].second.energy_pj = -1.0;
  cache.insert_batch(batch);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(key)->energy_pj, 100.0);

  // clear() forgets entries and counters, but outcomes already handed out
  // stay valid (snapshots are retired, never freed).
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_DOUBLE_EQ(hit->energy_pj, 100.0);
  EXPECT_EQ(cache.lookup(key), nullptr);
}

TEST(OutcomeCache, KeysSeparateOnEveryField) {
  OutcomeCache cache;
  const SliceOutcomeKey key{7, 42, 3, 1};
  std::vector<std::pair<SliceOutcomeKey, SliceOutcome>> batch;
  batch.push_back({key, SliceOutcome{}});
  cache.insert_batch(batch);

  ASSERT_NE(cache.lookup(key), nullptr);
  // Exact buckets: changing any field — machine, state digest, buffered
  // load, or mode — is a different key, never a fuzzy match.
  EXPECT_EQ(cache.lookup({8, 42, 3, 1}), nullptr);
  EXPECT_EQ(cache.lookup({7, 43, 3, 1}), nullptr);
  EXPECT_EQ(cache.lookup({7, 42, 4, 1}), nullptr);
  EXPECT_EQ(cache.lookup({7, 42, 3, 0}), nullptr);
}

// --- the digest the key is built on ------------------------------------------

TEST(ProcessorDigest, EqualWhenFreshOrReset_DivergesUnderLoad) {
  const FleetSpec spec = small_fleet(1, 4);
  placement::LutCache luts;
  sys::SystemConfig config = spec.config;
  config.lut_cache = &luts;

  sys::Processor a{config, spec.models[0]};
  sys::Processor b{config, spec.models[0]};
  const std::uint64_t fresh = a.state_digest();
  EXPECT_EQ(fresh, b.state_digest());  // same machine, same boundary state

  (void)a.run_slice(2);
  EXPECT_NE(a.state_digest(), fresh);  // residency/occupancy moved

  a.reset();
  EXPECT_EQ(a.state_digest(), fresh);  // reset() == fresh construction
}

// --- fleet byte-identity -----------------------------------------------------

TEST(OutcomeMemo, ByteIdenticalToScalarPathAcrossThreads) {
  const FleetSpec spec = small_fleet(24, 5);
  placement::LutCache ref_luts;
  const FleetResult ref = run_with(spec, 1, &ref_luts, nullptr);
  ASSERT_FALSE(ref.to_jsonl().empty());

  for (const unsigned threads : {1u, 2u, 8u}) {
    placement::LutCache luts;
    OutcomeCache memo;
    const FleetResult r = run_with(spec, threads, &luts, &memo);
    EXPECT_EQ(r.to_jsonl(), ref.to_jsonl()) << "threads=" << threads;
    EXPECT_EQ(r.summary_to_json(), ref.summary_to_json())
        << "threads=" << threads;
    EXPECT_EQ(r.lut_builds, ref.lut_builds) << "threads=" << threads;
    // Every device went one way or the other.
    EXPECT_EQ(r.memo_replayed_devices + r.memo_exact_devices,
              static_cast<std::uint64_t>(spec.devices));
  }
}

TEST(OutcomeMemo, WarmCacheReplaysEveryDeviceByteIdentically) {
  FleetSpec spec = small_fleet(24, 5);
  // Non-exhausting battery: exhaustion-boundary devices are pinned to the
  // exact path by design (see the exhaustion test below), and this test
  // wants the all-replay steady state.
  spec.battery.capacity = Energy::mj(5000.0);
  // One LUT cache for every run: outcome keys embed the lut_cache pointer
  // (sys::processor_reuse_key), so a per-run cache would cold-start the
  // memo each time. Warm it first so lut_builds (part of the summary) is 0
  // in all compared runs.
  placement::LutCache luts;
  (void)run_with(spec, 1, &luts, nullptr);
  const FleetResult ref = run_with(spec, 1, &luts, nullptr);

  OutcomeCache memo;
  const FleetResult cold = run_with(spec, 1, &luts, &memo);
  EXPECT_EQ(cold.to_jsonl(), ref.to_jsonl());
  EXPECT_GT(cold.memo_misses, 0u);  // the cache started empty

  const FleetResult warm = run_with(spec, 1, &luts, &memo);
  EXPECT_EQ(warm.to_jsonl(), ref.to_jsonl());
  EXPECT_EQ(warm.summary_to_json(), ref.summary_to_json());
  EXPECT_EQ(warm.memo_replayed_devices,
            static_cast<std::uint64_t>(spec.devices));
  EXPECT_EQ(warm.memo_exact_devices, 0u);
  EXPECT_EQ(warm.memo_misses, 0u);
}

TEST(OutcomeMemo, ExhaustedDevicesTakeExactPath) {
  FleetSpec spec = small_fleet(16, 6);
  // A battery that dies after roughly one busy slice: most of the fleet
  // exhausts mid-run.
  spec.battery.capacity = Energy::mj(10.0);
  // One pre-warmed LUT cache for every run (see
  // WarmCacheReplaysEveryDeviceByteIdentically).
  placement::LutCache luts;
  (void)run_with(spec, 1, &luts, nullptr);
  const FleetResult ref = run_with(spec, 1, &luts, nullptr);
  std::uint64_t exhausted = 0;
  for (const DeviceResult& d : ref.devices) {
    if (d.exhausted_at_slice >= 0) ++exhausted;
  }
  ASSERT_GT(exhausted, 0u);

  OutcomeCache memo;
  const FleetResult cold = run_with(spec, 1, &luts, &memo);
  EXPECT_EQ(cold.to_jsonl(), ref.to_jsonl());

  // Warm run: devices that drain the battery mid-slice must still run the
  // full Device::run path (the replay lane parks when drained < requested),
  // no matter how warm the cache is.
  const FleetResult warm = run_with(spec, 1, &luts, &memo);
  EXPECT_EQ(warm.to_jsonl(), ref.to_jsonl());
  EXPECT_EQ(warm.summary_to_json(), ref.summary_to_json());
  EXPECT_GE(warm.memo_exact_devices, exhausted);
  EXPECT_EQ(warm.memo_replayed_devices + warm.memo_exact_devices,
            static_cast<std::uint64_t>(spec.devices));
}

}  // namespace
}  // namespace hhpim::fleet
